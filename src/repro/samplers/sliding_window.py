"""Uniform sampling over a sliding window of the most recent elements.

Many of the systems the paper motivates (network devices, trading monitors)
care about the *recent* stream rather than the full history.  This sampler
maintains a uniform sample of the last ``window`` elements using the
priority-based technique: each element receives a uniform priority, and the
sample consists of the ``k`` smallest-priority elements among the window's
live elements.  To answer that query exactly with bounded memory the sampler
keeps, per rank, only the candidates that could still become one of the ``k``
minima before they expire — the classical "chain/priority sampling over
sliding windows" idea.  Memory is ``O(k log window)`` in expectation.

The adversarial experiments exercise it as an extension subject: the paper's
guarantees are stated for whole-stream sampling, and the sliding-window
variant inherits them per window via the same union-bound argument.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections.abc import Iterable, Sequence
from typing import Any

from ..exceptions import ConfigurationError
from ..rng import RandomState, ensure_generator, spawn_generators
from .base import SampleUpdate, StreamSampler, UpdateBatch


class SlidingWindowSampler(StreamSampler):
    """Uniform ``k``-sample over the last ``window`` stream elements.

    Parameters
    ----------
    capacity:
        Target sample size ``k``.
    window:
        Window length ``w``; only the most recent ``w`` elements are eligible.
    seed:
        Seed or generator for priorities.
    """

    name = "sliding-window"

    #: This family's :meth:`merge` takes per-part trailing offsets (each
    #: part's window covers the most recent stretch of its substream), so
    #: coordinators must pass them; see ``ShardedSampler.merged_sampler``.
    merge_wants_offsets = True

    def __init__(self, capacity: int, window: int, seed: RandomState = None) -> None:
        super().__init__()
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if window < capacity:
            raise ConfigurationError(
                f"window ({window}) must be at least the capacity ({capacity})"
            )
        self.capacity = int(capacity)
        self.window = int(window)
        self._rng = ensure_generator(seed)
        # Candidates: (arrival_index, priority, element), kept sorted by
        # arrival.  An element is pruned once `capacity` later-arriving
        # elements have smaller priorities (it can then never re-enter the
        # sample before expiring).
        self._candidates: list[tuple[int, float, Any]] = []

    # ------------------------------------------------------------------
    # StreamSampler interface
    # ------------------------------------------------------------------
    def _process(self, element: Any) -> SampleUpdate:
        arrival = self.rounds_processed
        priority = float(self._rng.random())
        self._expire(arrival)
        self._candidates.append((arrival, priority, element))
        self._prune()
        accepted = any(
            arrival == candidate_arrival for candidate_arrival, _p, _e in self._current_sample_entries()
        )
        return SampleUpdate(round_index=arrival, element=element, accepted=accepted)

    def extend(
        self, elements: Iterable[Any], updates: bool = True
    ) -> UpdateBatch | None:
        """Vectorised batch ingestion; the resulting state is bit-identical
        to sequential processing.

        All priorities come from one ``Generator.random(n)`` draw (the same
        bit-stream consumption as ``n`` scalar draws).  The surviving
        candidate set after a batch is characterised without replaying the
        intermediate states: a candidate is live iff it has not expired by
        the batch's final round, and kept iff fewer than ``capacity``
        surviving later arrivals have strictly smaller priorities — the same
        fixed point the per-round ``_prune`` maintains incrementally (its
        dominators expire no earlier than the candidates they dominate, so
        pruning early never changes the final set).  The kernel therefore
        scans the batch newest-to-oldest with a single float comparison per
        rejected element and an ``insort`` per survivor (``O(k log w)``
        expected survivors).

        The per-element ``accepted`` flag is defined against each
        intermediate state, so ``updates=True`` takes the sequential path
        (identical draws, identical state — just slower); batch callers that
        do not consume per-round records should pass ``updates=False``.
        """
        if updates:
            return super().extend(elements, True)
        elements = list(elements)
        if not elements:
            return None
        n = len(elements)
        priorities = self._rng.random(n)
        start_round = self._round
        self._round += n
        final_round = start_round + n
        cutoff = final_round - self.window
        # Only the trailing `window` batch elements can be live at the end;
        # and if any batch element expired, every pre-batch candidate did too.
        first_live = max(0, n - self.window)

        capacity = self.capacity
        kept_reversed: list[tuple[int, float, Any]] = []
        kept_priorities: list[float] = []
        threshold: float | None = None
        for offset in range(n - 1, first_live - 1, -1):
            priority = float(priorities[offset])
            if threshold is not None and priority > threshold:
                continue
            rank = bisect_left(kept_priorities, priority)
            if rank >= capacity:
                continue
            insort(kept_priorities, priority)
            kept_reversed.append((start_round + 1 + offset, priority, elements[offset]))
            if len(kept_priorities) >= capacity:
                threshold = kept_priorities[capacity - 1]
        old_kept_reversed: list[tuple[int, float, Any]] = []
        if first_live == 0:
            for candidate in reversed(self._candidates):
                if candidate[0] <= cutoff:
                    break
                priority = candidate[1]
                if threshold is not None and priority > threshold:
                    continue
                rank = bisect_left(kept_priorities, priority)
                if rank >= capacity:
                    continue
                insort(kept_priorities, priority)
                old_kept_reversed.append(candidate)
                if len(kept_priorities) >= capacity:
                    threshold = kept_priorities[capacity - 1]
        old_kept_reversed.reverse()
        kept_reversed.reverse()
        self._candidates = old_kept_reversed + kept_reversed
        return None

    def merge(
        self,
        others: Sequence["SlidingWindowSampler"],
        *,
        rng: RandomState | None = None,
        offsets: Sequence[int] | None = None,
    ) -> "SlidingWindowSampler":
        """Merge sharded sliding-window samplers into one window summary.

        Each part's priority-tagged candidates are shifted to global arrival
        indices (``offsets``, defaulting to consecutive substreams: part
        ``i`` starts where part ``i-1`` ended), combined, and re-run through
        the same expiry + domination fixed point as the batch kernel.  For
        consecutive substreams the result is **bit-identical** to a single
        sampler that consumed the concatenated stream with the same
        priorities: local pruning only ever removes candidates whose
        dominators arrived later at the same part — later globally too — so
        the combined fixed point is unchanged (the same argument that makes
        the chunked ``extend`` kernel exact).

        For interleaved substreams (sharded routing) no offset assignment
        reconstructs global arrival order; the merged *candidate set* is then
        approximate, but the merged ``sample`` — the ``capacity`` smallest
        priorities among all live candidates — never depends on arrival
        order and remains exactly the priority rule applied to the union of
        the parts' windows.  Deterministic; the parts are not mutated.
        """
        parts = self._validate_merge_parts(others)
        if offsets is None:
            offsets = []
            start = 0
            for part in parts:
                offsets.append(start)
                start += part.rounds_processed
            total_round = start
        else:
            if len(offsets) != len(parts):
                raise ConfigurationError(
                    f"expected {len(parts)} offsets, got {len(offsets)}"
                )
            total_round = max(
                int(offset) + part.rounds_processed
                for offset, part in zip(offsets, parts)
            )
        combined = [
            (arrival + int(offset), priority, element)
            for part, offset in zip(parts, offsets)
            for arrival, priority, element in part._candidates
        ]
        combined.sort(key=lambda candidate: candidate[0])
        cutoff = total_round - self.window
        capacity = self.capacity
        kept_reversed: list[tuple[int, float, Any]] = []
        kept_priorities: list[float] = []
        threshold: float | None = None
        for candidate in reversed(combined):
            if candidate[0] <= cutoff:
                break  # sorted by arrival: everything before this has expired
            priority = candidate[1]
            if threshold is not None and priority > threshold:
                continue
            rank = bisect_left(kept_priorities, priority)
            if rank >= capacity:
                continue
            insort(kept_priorities, priority)
            kept_reversed.append(candidate)
            if len(kept_priorities) >= capacity:
                threshold = kept_priorities[capacity - 1]
        kept_reversed.reverse()
        merged = SlidingWindowSampler(
            self.capacity,
            self.window,
            seed=rng if rng is not None else spawn_generators(self._rng, 1)[0],
        )
        merged._candidates = kept_reversed
        merged._round = total_round
        return merged

    def _validate_merge_parts(
        self, others: Sequence["SlidingWindowSampler"]
    ) -> list["SlidingWindowSampler"]:
        parts = [self, *others]
        for part in parts:
            if not isinstance(part, SlidingWindowSampler):
                raise ConfigurationError(
                    f"cannot merge a SlidingWindowSampler with {type(part).__name__}"
                )
            if part.capacity != self.capacity or part.window != self.window:
                raise ConfigurationError(
                    "cannot merge sliding windows with different geometry: "
                    f"({self.capacity}, {self.window}) vs ({part.capacity}, {part.window})"
                )
        return parts

    @property
    def sample(self) -> Sequence[Any]:
        return [element for _arrival, _priority, element in self._current_sample_entries()]

    def reset(self) -> None:
        self._candidates = []
        self._round = 0

    def memory_footprint(self) -> int:
        return len(self._candidates)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _expire(self, current_round: int) -> None:
        cutoff = current_round - self.window
        if cutoff > 0:
            self._candidates = [
                candidate for candidate in self._candidates if candidate[0] > cutoff
            ]

    def _prune(self) -> None:
        """Drop candidates that can never re-enter the sample before expiring.

        A candidate is dominated once at least ``capacity`` candidates that
        arrived *after* it have strictly smaller priorities: those dominators
        expire later, so the candidate can never climb back into the k
        smallest priorities of a live window.
        """
        kept: list[tuple[int, float, Any]] = []
        # Scan from newest to oldest, tracking how many newer candidates have
        # smaller priority than the one under consideration.
        for candidate in reversed(self._candidates):
            dominators = sum(
                1 for newer in kept if newer[1] < candidate[1]
            )
            if dominators < self.capacity:
                kept.append(candidate)
        kept.reverse()
        self._candidates = kept

    def _current_sample_entries(self) -> list[tuple[int, float, Any]]:
        live = sorted(self._candidates, key=lambda candidate: candidate[1])
        return live[: self.capacity]
