"""Streaming samplers and deterministic baselines.

Randomised samplers (all expose the :class:`StreamSampler` interface, whose
state is fully visible to the adversary, as in the paper's model):

* :class:`BernoulliSampler` — the paper's ``BernoulliSample``,
* :class:`ReservoirSampler` — the paper's ``ReservoirSample`` (Vitter's
  Algorithm R), with optional non-standard eviction policies for ablations,
* :class:`WeightedReservoirSampler` — Efraimidis–Spirakis A-Res,
* :class:`PrioritySampler` — priority sampling,
* :class:`SlidingWindowSampler` — uniform sampling over a sliding window.

Deterministic / sketching baselines (Section 1.1's comparison targets):

* :class:`GreenwaldKhannaSketch` — deterministic quantile summary,
* :class:`MergeReduceSummary` — deterministic epsilon-approximation,
* :class:`MisraGriesSummary` — deterministic heavy hitters,
* :class:`KLLSketch` — randomised quantile sketch (not covered by the paper's
  guarantees; included for the extension experiments).
"""

from .base import FixedSizeSampler, Mergeable, SampleUpdate, StreamSampler, UpdateBatch
from .bernoulli import BernoulliSampler
from .deterministic import MergeReduceSummary, WeightedPoint
from .kll import KLLSketch
from .misra_gries import MisraGriesSummary
from .priority import PrioritySampler
from .quantile_sketch import GreenwaldKhannaSketch
from .reservoir import ReservoirSampler
from .sliding_window import SlidingWindowSampler
from .weighted_reservoir import WeightedReservoirSampler

__all__ = [
    "BernoulliSampler",
    "FixedSizeSampler",
    "GreenwaldKhannaSketch",
    "KLLSketch",
    "Mergeable",
    "MergeReduceSummary",
    "MisraGriesSummary",
    "PrioritySampler",
    "ReservoirSampler",
    "SampleUpdate",
    "SlidingWindowSampler",
    "StreamSampler",
    "UpdateBatch",
    "WeightedPoint",
    "WeightedReservoirSampler",
]
