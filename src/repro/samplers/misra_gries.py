"""Misra–Gries deterministic heavy-hitters summary.

Deterministic counterpart to the sample-and-count heavy-hitters algorithm of
Corollary 1.6: with ``k`` counters the summary estimates every element's
frequency within ``n / (k + 1)``, so choosing ``k >= 1 / epsilon`` suffices
for the (alpha, epsilon) heavy-hitters task.  Being deterministic it is
automatically robust against adaptive adversaries — at the cost of having to
examine every element, which is exactly the trade-off the paper highlights.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from typing import Any

from ..exceptions import ConfigurationError


class MisraGriesSummary:
    """Frequency summary with ``capacity`` counters and additive error ``n / (capacity + 1)``."""

    name = "misra-gries"

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._counters: dict[Any, int] = {}
        self._count = 0
        # Cumulative amount subtracted from every (tracked or untracked)
        # element's counter by decrement-all steps and merge truncations —
        # the summary's exact worst-case underestimate (see
        # :attr:`max_underestimate`).
        self._decrements = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def update(self, element: Any) -> None:
        """Process one stream element."""
        self._count += 1
        if element in self._counters:
            self._counters[element] += 1
            return
        if len(self._counters) < self.capacity:
            self._counters[element] = 1
            return
        # Decrement-all step: every counter loses one; zeroed counters vanish.
        self._decrements += 1
        exhausted = []
        for key in self._counters:
            self._counters[key] -= 1
            if self._counters[key] == 0:
                exhausted.append(key)
        for key in exhausted:
            del self._counters[key]

    def extend(self, elements: Iterable[Any]) -> None:
        """Process a batch of stream elements with chunked counter updates.

        Bit-identical to sequential processing on every input.  The key
        observation: while incoming elements hit keys that are *already
        tracked*, the per-element rule only increments counters — no key can
        appear or vanish — so maximal runs of tracked elements collapse to
        one ``collections.Counter`` pass and a bulk merge.  Novel keys (where
        eviction order matters) are processed by the exact per-element rule
        between runs.  The per-element rule is already a bare dict update,
        so the payoff is modest: parity at typical skew (runs are short),
        ~2x when a few keys dominate outright and runs grow long.
        """
        elements = list(elements)
        counters = self._counters
        update = self.update

        def flush(start: int, stop: int) -> None:
            length = stop - start
            if length <= 32:
                # A Counter pass only pays off on long runs; short ones take
                # plain increments (still one dict op per element).
                for position in range(start, stop):
                    counters[elements[position]] += 1
            else:
                for key, increment in Counter(elements[start:stop]).items():
                    counters[key] += increment
            self._count += length

        run_start = None
        position = 0
        try:
            for position, element in enumerate(elements):
                if element in counters:
                    if run_start is None:
                        run_start = position
                    continue
                if run_start is not None:
                    flush(run_start, position)
                    run_start = None
                update(element)
        except TypeError:
            # Unhashable element: flush the tracked run before it, then let
            # the per-element rule raise with exactly the sequential state.
            if run_start is not None:
                flush(run_start, position)
            update(elements[position])
            raise  # pragma: no cover - update() always raises first
        if run_start is not None:
            flush(run_start, len(elements))

    # ------------------------------------------------------------------
    # Merging (the mergeable-summaries rule)
    # ------------------------------------------------------------------
    def merge(self, others: Sequence["MisraGriesSummary"], *, rng: Any = None) -> "MisraGriesSummary":
        """Merge sharded summaries via the summed-counter rule.

        Counters are added key-wise; if more than ``capacity`` keys survive,
        the ``(capacity + 1)``-th largest merged count is subtracted from
        every counter and non-positive counters are dropped — the classical
        mergeable-summaries rule, which keeps the total underestimate within
        ``n / (capacity + 1)`` for the combined stream length ``n`` (each
        unit of subtraction destroys at least ``capacity + 1`` units of
        counted weight, exactly like a streaming decrement-all step).  The
        subtraction is accounted in :attr:`max_underestimate`, so the error
        budget of a sharded deployment is explicit rather than implied.
        Deterministic (``rng`` is accepted for protocol uniformity and
        ignored); the parts are not mutated.

        When the merged counters fit within ``capacity`` no truncation
        happens and the merge is **exact**: every estimate equals the sum of
        the parts' estimates.
        """
        parts = [self, *others]
        for part in parts:
            if not isinstance(part, MisraGriesSummary):
                raise ConfigurationError(
                    f"cannot merge a MisraGriesSummary with {type(part).__name__}"
                )
            if part.capacity != self.capacity:
                raise ConfigurationError(
                    "cannot merge summaries of different capacities: "
                    f"{self.capacity} vs {part.capacity}"
                )
        merged = MisraGriesSummary(self.capacity)
        counters: Counter = Counter()
        for part in parts:
            counters.update(part._counters)
            merged._count += part._count
            merged._decrements += part._decrements
        if len(counters) > self.capacity:
            by_count = sorted(counters.values(), reverse=True)
            truncation = by_count[self.capacity]
            counters = Counter(
                {key: count - truncation for key, count in counters.items() if count > truncation}
            )
            merged._decrements += truncation
        merged._counters = dict(counters)
        return merged

    @property
    def max_underestimate(self) -> int:
        """Exact worst-case underestimate of any element's frequency.

        The sum of every decrement-all step and merge truncation this
        summary (and the parts it was merged from) ever performed.  Always
        within the Misra–Gries guarantee ``count // (capacity + 1)`` —
        including across arbitrarily many merges — because each unit of
        subtraction destroys at least ``capacity + 1`` units of counted
        weight.
        """
        return self._decrements

    def degradation_report(self) -> dict[str, Any]:
        """Deterministic error accounting for merged / degraded summaries.

        ``max_underestimate`` is the realised worst-case underestimate
        (decrement-all steps plus merge truncations actually performed);
        ``guarantee`` is the family's a-priori bound for the represented
        stream length.  The realised value never exceeds the guarantee, so
        the pair brackets the error of any survivor-subset merge.
        """
        return {
            "family": self.name,
            "rounds": self._count,
            "sample_size": len(self._counters),
            "capacity": self.capacity,
            "max_underestimate": self._decrements,
            "guarantee": self._count // (self.capacity + 1),
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def estimate(self, element: Any) -> int:
        """Lower-bound estimate of the element's frequency (within ``n/(capacity+1)``)."""
        return self._counters.get(element, 0)

    def frequency_bounds(self, element: Any) -> tuple[int, int]:
        """Return (lower, upper) bounds on the element's true frequency."""
        lower = self.estimate(element)
        slack = self._count // (self.capacity + 1)
        return lower, lower + slack

    def heavy_hitters(self, threshold_fraction: float) -> dict[Any, int]:
        """Return candidate elements whose frequency may be ``>= threshold_fraction * n``.

        Guaranteed to include every true heavy hitter; may include false
        positives whose frequency is at least ``threshold - n/(capacity+1)``.
        """
        if not 0.0 < threshold_fraction <= 1.0:
            raise ConfigurationError(
                f"threshold fraction must lie in (0, 1], got {threshold_fraction}"
            )
        slack = self._count / (self.capacity + 1)
        cutoff = threshold_fraction * self._count - slack
        return {
            element: count
            for element, count in self._counters.items()
            if count >= cutoff
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of stream elements processed."""
        return self._count

    def memory_footprint(self) -> int:
        """Number of counters currently held."""
        return len(self._counters)

    def reset(self) -> None:
        self._counters = {}
        self._count = 0
        self._decrements = 0
