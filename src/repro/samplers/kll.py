"""KLL streaming quantile sketch [KLL16], simplified implementation.

KLL is the modern randomised quantile sketch: a hierarchy of compactors where
level ``h`` stores items each representing ``2^h`` stream elements; when a
compactor overflows it sorts its buffer and promotes every other element
(random offset) to the next level.  It answers rank queries within
``epsilon * n`` with space ``O((1/epsilon) sqrt(log(1/delta)))``.

It is included as a second baseline for experiment E14: unlike the plain
samplers it is *not* covered by the paper's robustness theorems (its
randomness is also observable through its state), so comparing its adversarial
behaviour against Bernoulli/reservoir sampling is an interesting extension.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from ..exceptions import ConfigurationError, EmptySampleError
from ..rng import RandomState, ensure_generator, spawn_generators


class KLLSketch:
    """Simplified KLL quantile sketch with geometrically shrinking compactors.

    Parameters
    ----------
    k:
        Size parameter of the top compactor; larger means more accurate.
        The standard accuracy heuristic is ``epsilon ~ 1.7 / k``.
    seed:
        Seed or generator for the random compaction offsets.
    """

    name = "kll"

    #: Capacity decay rate between consecutive compactor levels.
    _DECAY = 2.0 / 3.0

    def __init__(self, k: int = 200, seed: RandomState = None) -> None:
        if k < 8:
            raise ConfigurationError(f"k must be >= 8, got {k}")
        self.k = int(k)
        self._rng = ensure_generator(seed)
        self._compactors: list[list[float]] = [[]]
        self._count = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def update(self, value: float) -> None:
        """Insert one stream element."""
        self._compactors[0].append(float(value))
        self._count += 1
        if self._size() > self._capacity_total():
            self._compress()

    def extend(self, values: Iterable[float]) -> None:
        """Insert a batch of stream elements with buffered compaction.

        Bit-identical to per-element :meth:`update`: the buffer fills level 0
        in bulk slices up to the current total capacity, and compaction fires
        exactly when the sketch first exceeds capacity — the same trigger
        points (and hence the same random compaction offsets) as the
        sequential loop.  What the bulk path saves is the per-element
        ``_size()`` / ``_capacity_total()`` recomputation, which dominates
        sequential ingestion.
        """
        values = [float(value) for value in values]
        cursor = 0
        while cursor < len(values):
            # Fill to exactly one element over capacity — the same state at
            # which the sequential loop first triggers a compression — so the
            # O(levels) size/capacity bookkeeping runs once per compression
            # cycle instead of once per element.
            take = max(1, self._capacity_total() - self._size() + 1)
            chunk = values[cursor : cursor + take]
            self._compactors[0].extend(chunk)
            self._count += len(chunk)
            cursor += len(chunk)
            if self._size() > self._capacity_total():
                self._compress()

    # ------------------------------------------------------------------
    # Merging (level-wise, as in [KLL16] / the mergeable-summaries model)
    # ------------------------------------------------------------------
    def merge(
        self,
        others: Sequence["KLLSketch"],
        *,
        rng: np.random.Generator | None = None,
    ) -> "KLLSketch":
        """Merge sharded sketches by level-wise compactor concatenation.

        Items at level ``h`` represent ``2^h`` stream elements in every
        part, so concatenating the parts' level-``h`` compactors yields a
        valid (over-full) sketch of the combined stream; standard
        compaction then restores the capacity invariants.  Each compaction
        introduces the same ``O(2^h)`` rank uncertainty it does during
        streaming, so the merged sketch stays in the ``O(eps n)`` rank-error
        regime of a single sketch over the concatenated stream — the
        mergeable-summaries property of the KLL hierarchy.

        Compaction offsets for the merge come from the merged sketch's own
        generator — a fresh independent stream spawned from ``rng`` (default:
        ``self``'s generator) — so the parts are never mutated, and
        streaming further into the merged sketch cannot advance any part's
        seeded stream.
        """
        parts = [self, *others]
        for part in parts:
            if not isinstance(part, KLLSketch):
                raise ConfigurationError(
                    f"cannot merge a KLLSketch with {type(part).__name__}"
                )
            if part.k != self.k:
                raise ConfigurationError(
                    f"cannot merge sketches with different k: {self.k} vs {part.k}"
                )
        merge_rng = self._rng if rng is None else ensure_generator(rng)
        merged = KLLSketch(self.k, seed=spawn_generators(merge_rng, 1)[0])
        levels = max(len(part._compactors) for part in parts)
        merged._compactors = [
            [
                item
                for part in parts
                if level < len(part._compactors)
                for item in part._compactors[level]
            ]
            for level in range(levels)
        ]
        merged._count = sum(part._count for part in parts)
        while merged._size() > merged._capacity_total():
            merged._compress()
        return merged

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rank_query(self, value: float) -> float:
        """Estimate ``|{x in stream : x <= value}|``."""
        if self._count == 0:
            raise EmptySampleError("cannot query an empty sketch")
        rank = 0.0
        for level, compactor in enumerate(self._compactors):
            weight = 2.0**level
            rank += weight * sum(1 for item in compactor if item <= value)
        return rank

    def quantile_query(self, fraction: float) -> float:
        """Return an approximate ``fraction``-quantile of the stream."""
        if self._count == 0:
            raise EmptySampleError("cannot query an empty sketch")
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must lie in [0, 1], got {fraction}")
        weighted: list[tuple[float, float]] = []
        for level, compactor in enumerate(self._compactors):
            weight = 2.0**level
            weighted.extend((item, weight) for item in compactor)
        weighted.sort(key=lambda pair: pair[0])
        target = fraction * self._count
        cumulative = 0.0
        for value, weight in weighted:
            cumulative += weight
            if cumulative >= target:
                return value
        return weighted[-1][0]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of stream elements summarised."""
        return self._count

    def memory_footprint(self) -> int:
        """Number of stored items across all compactors."""
        return self._size()

    def reset(self) -> None:
        self._compactors = [[]]
        self._count = 0

    @property
    def estimated_epsilon(self) -> float:
        """The rank-error guarantee heuristically associated with this ``k``."""
        return 1.7 / self.k

    def degradation_report(self) -> dict[str, float]:
        """Rank-error accounting for merged / degraded sketches.

        ``rank_error_budget`` is the absolute rank error associated with
        the summarised count under the sketch's epsilon heuristic; a
        survivor-subset merge covers fewer stream elements, so its (still
        valid) budget shrinks with the represented count.
        """
        return {
            "family": self.name,
            "rounds": self._count,
            "sample_size": self._size(),
            "estimated_epsilon": self.estimated_epsilon,
            "rank_error_budget": self.estimated_epsilon * self._count,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _capacity(self, level: int) -> int:
        depth = len(self._compactors) - level - 1
        return max(2, int(math.ceil(self.k * (self._DECAY**depth))))

    def _capacity_total(self) -> int:
        return sum(self._capacity(level) for level in range(len(self._compactors)))

    def _size(self) -> int:
        return sum(len(compactor) for compactor in self._compactors)

    def _compress(self) -> None:
        for level in range(len(self._compactors)):
            if len(self._compactors[level]) > self._capacity(level):
                if level + 1 == len(self._compactors):
                    self._compactors.append([])
                self._compact_level(level)
                if self._size() <= self._capacity_total():
                    break

    def _compact_level(self, level: int) -> None:
        compactor = sorted(self._compactors[level])
        offset = int(self._rng.integers(0, 2))
        promoted = compactor[offset::2]
        self._compactors[level] = []
        self._compactors[level + 1].extend(promoted)
