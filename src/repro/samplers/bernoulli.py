"""Bernoulli sampling (the ``BernoulliSample`` algorithm of the paper).

Each incoming element is stored independently with probability ``p``.  For a
stream of length ``n`` the sample size concentrates around ``n p``
(Chernoff), and Theorem 1.2 shows that choosing
``p >= 10 (ln|R| + ln(4/delta)) / (eps^2 n)`` makes the sample an
epsilon-approximation with probability ``1 - delta`` even against a fully
adaptive adversary.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RandomState, ensure_generator, spawn_generators
from .base import SampleUpdate, StreamSampler, UpdateBatch


class BernoulliSampler(StreamSampler):
    """Keep each element independently with probability ``probability``.

    Parameters
    ----------
    probability:
        The per-element sampling probability ``p`` in ``(0, 1]``.
    seed:
        Seed or generator for the sampler's private coin flips.  The adversary
        observes the sampler's *state* (its sample) but never its future
        randomness, matching the model of Section 2.
    """

    name = "bernoulli"

    def __init__(self, probability: float, seed: RandomState = None) -> None:
        super().__init__()
        if not 0.0 < probability <= 1.0:
            raise ConfigurationError(
                f"sampling probability must lie in (0, 1], got {probability}"
            )
        self.probability = float(probability)
        self._rng = ensure_generator(seed)
        self._sample: list[Any] = []

    # ------------------------------------------------------------------
    # StreamSampler interface
    # ------------------------------------------------------------------
    def _process(self, element: Any) -> SampleUpdate:
        accepted = bool(self._rng.random() < self.probability)
        if accepted:
            self._sample.append(element)
        return SampleUpdate(
            round_index=self.rounds_processed, element=element, accepted=accepted
        )

    def extend(
        self, elements: Iterable[Any], updates: bool = True
    ) -> UpdateBatch | None:
        """Vectorised batch ingestion: one numpy draw for the whole batch.

        Bit-identical to feeding the elements through :meth:`process` one by
        one — ``Generator.random(n)`` consumes the underlying bit stream
        exactly like ``n`` scalar draws — so seeded runs reproduce regardless
        of how the stream was chunked.  The per-round record comes back as a
        columnar :class:`UpdateBatch` (no per-element allocations).
        """
        elements = list(elements)
        if not elements:
            return UpdateBatch.empty() if updates else None
        coins = self._rng.random(len(elements))
        accepted = coins < self.probability
        start_round = self._round
        self._round += len(elements)
        self._sample.extend(
            element for element, taken in zip(elements, accepted) if taken
        )
        if not updates:
            return None
        round_indices = np.arange(
            start_round + 1, start_round + len(elements) + 1, dtype=np.int64
        )
        return UpdateBatch(round_indices, elements, accepted)

    def merge(
        self,
        others: Sequence["BernoulliSampler"],
        *,
        rng: np.random.Generator | None = None,
    ) -> "BernoulliSampler":
        """Merge sharded Bernoulli samplers into one summary of the union.

        Exact and deterministic: every element of every substream was kept
        independently with the same probability ``p``, so the union of the
        parts' samples *is* a Bernoulli(``p``) sample of the combined stream.
        Samples are concatenated in part order (``self`` first); the parts
        are not mutated and no randomness is consumed.  The merged sampler
        can keep streaming — its future coins come from ``rng`` (default: a
        fresh independent stream spawned from ``self``'s generator).
        """
        parts = self._validate_merge_parts(others)
        merged = BernoulliSampler(
            self.probability,
            seed=rng if rng is not None else spawn_generators(self._rng, 1)[0],
        )
        merged._round = sum(part._round for part in parts)
        merged._sample = [element for part in parts for element in part._sample]
        return merged

    def _validate_merge_parts(
        self, others: Sequence["BernoulliSampler"]
    ) -> list["BernoulliSampler"]:
        parts = [self, *others]
        for part in parts:
            if not isinstance(part, BernoulliSampler):
                raise ConfigurationError(
                    f"cannot merge a BernoulliSampler with {type(part).__name__}"
                )
            if part.probability != self.probability:
                raise ConfigurationError(
                    "cannot merge Bernoulli samplers with different probabilities: "
                    f"{self.probability} vs {part.probability}"
                )
        return parts

    @property
    def sample(self) -> Sequence[Any]:
        return self._sample

    def reset(self) -> None:
        self._sample = []
        self._round = 0

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @property
    def expected_sample_size_per_element(self) -> float:
        """Expected growth of the sample per processed element (= ``p``)."""
        return self.probability

    def expected_sample_size(self, stream_length: int) -> float:
        """Expected final sample size for a stream of the given length."""
        if stream_length < 0:
            raise ConfigurationError(f"stream length must be >= 0, got {stream_length}")
        return self.probability * stream_length
