"""repro — adversarially robust sampling.

A production-quality reproduction of *"The Adversarial Robustness of
Sampling"* (Omri Ben-Eliezer and Eylon Yogev, PODS 2020).  The library
provides:

* the paper's samplers (:class:`BernoulliSampler`, :class:`ReservoirSampler`)
  plus the wider family a sampling toolkit is expected to ship,
* set systems and epsilon-approximation machinery (Definition 1.1),
* the adaptive adversarial game of Section 2 and the paper's attacks
  (introduction bisection attack, Figure-3 attack of Theorem 1.3),
* sample-size calculators for Theorems 1.2, 1.3 and 1.4,
* the applications of Section 1.2 (quantiles, heavy hitters, range queries,
  center points, clustering, distributed load balancing), and
* an experiment harness that regenerates the behaviour each theorem predicts.

Quickstart
----------
>>> from repro import ReservoirSampler, PrefixSystem, reservoir_adaptive_size
>>> from repro import ThresholdAttackAdversary, run_adaptive_game
>>> system = PrefixSystem(1024)
>>> k = reservoir_adaptive_size(system.log_cardinality(), epsilon=0.2, delta=0.05).size
>>> sampler = ReservoirSampler(k, seed=0)
>>> attack = ThresholdAttackAdversary.for_reservoir(k, stream_length=2000,
...                                                 universe_size=1024)
>>> game = run_adaptive_game(sampler, attack, 2000, set_system=system, epsilon=0.2)
>>> game.succeeded
True
"""

from ._version import __version__
from .adversary import (
    Adversary,
    BatchCellStats,
    BatchGameRunner,
    BisectionAdversary,
    ContinuousGameResult,
    EvictionChaserAdversary,
    GameResult,
    GreedyDensityAdversary,
    MedianAttackAdversary,
    MixingGreedyDensityAdversary,
    ObliviousAdversary,
    SortedAdversary,
    StaticAdversary,
    SwitchingSingletonAdversary,
    ThresholdAttackAdversary,
    TrialOutcome,
    UniformAdversary,
    ZipfAdversary,
    run_adaptive_game,
    run_continuous_game,
)
from .applications import (
    RobustQuantileSketch,
    SampleHeavyHitters,
    SampleRangeCounter,
    center_from_sample,
    compare_sample_clustering,
    evaluate_heavy_hitters,
    exact_heavy_hitters,
    kmeans,
    simulate_load_balancing,
)
from .core import (
    RobustnessCertificate,
    approximation_error,
    bernoulli_adaptive_rate,
    bernoulli_attack_threshold,
    certify_bernoulli,
    certify_reservoir,
    is_epsilon_approximation,
    reservoir_adaptive_size,
    reservoir_attack_threshold,
    reservoir_continuous_size,
)
from .distributed import (
    DistributedReservoir,
    DistributedReservoirSampler,
    RandomRouter,
    ShardedSampler,
)
from .exceptions import (
    ConfigurationError,
    EmptySampleError,
    ExperimentError,
    ReproError,
    StreamExhaustedError,
    UniverseError,
)
from .samplers import (
    BernoulliSampler,
    GreenwaldKhannaSketch,
    KLLSketch,
    MergeReduceSummary,
    MisraGriesSummary,
    PrioritySampler,
    ReservoirSampler,
    SlidingWindowSampler,
    StreamSampler,
    WeightedReservoirSampler,
)
from .setsystems import (
    ContinuousPrefixSystem,
    DiscrepancyTracker,
    ExplicitSetSystem,
    HalfspaceSystem,
    Interval,
    IntervalSystem,
    Prefix,
    PrefixSystem,
    RectangleSystem,
    SetSystem,
    Singleton,
    SingletonSystem,
)
from .scenarios import (
    SCENARIOS,
    ScenarioConfig,
    ScenarioResult,
    run_scenario,
    sweep_scenario,
)
from .streams import GridUniverse, OrderedUniverse

__all__ = [
    "Adversary",
    "BatchCellStats",
    "BatchGameRunner",
    "BernoulliSampler",
    "BisectionAdversary",
    "ConfigurationError",
    "ContinuousGameResult",
    "ContinuousPrefixSystem",
    "DiscrepancyTracker",
    "DistributedReservoir",
    "DistributedReservoirSampler",
    "EmptySampleError",
    "EvictionChaserAdversary",
    "ExperimentError",
    "ExplicitSetSystem",
    "GameResult",
    "GreedyDensityAdversary",
    "GreenwaldKhannaSketch",
    "GridUniverse",
    "HalfspaceSystem",
    "Interval",
    "IntervalSystem",
    "KLLSketch",
    "MedianAttackAdversary",
    "MergeReduceSummary",
    "MixingGreedyDensityAdversary",
    "MisraGriesSummary",
    "ObliviousAdversary",
    "OrderedUniverse",
    "Prefix",
    "PrefixSystem",
    "PrioritySampler",
    "RandomRouter",
    "RectangleSystem",
    "ReproError",
    "ReservoirSampler",
    "RobustQuantileSketch",
    "RobustnessCertificate",
    "SCENARIOS",
    "ScenarioConfig",
    "ScenarioResult",
    "SampleHeavyHitters",
    "SampleRangeCounter",
    "SetSystem",
    "ShardedSampler",
    "Singleton",
    "SingletonSystem",
    "SlidingWindowSampler",
    "SortedAdversary",
    "StaticAdversary",
    "StreamExhaustedError",
    "StreamSampler",
    "SwitchingSingletonAdversary",
    "ThresholdAttackAdversary",
    "TrialOutcome",
    "UniformAdversary",
    "UniverseError",
    "WeightedReservoirSampler",
    "ZipfAdversary",
    "__version__",
    "approximation_error",
    "bernoulli_adaptive_rate",
    "bernoulli_attack_threshold",
    "center_from_sample",
    "certify_bernoulli",
    "certify_reservoir",
    "compare_sample_clustering",
    "evaluate_heavy_hitters",
    "exact_heavy_hitters",
    "is_epsilon_approximation",
    "kmeans",
    "reservoir_adaptive_size",
    "reservoir_attack_threshold",
    "reservoir_continuous_size",
    "run_adaptive_game",
    "run_continuous_game",
    "run_scenario",
    "simulate_load_balancing",
    "sweep_scenario",
]
