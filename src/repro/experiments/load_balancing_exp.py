"""E12 — distributed-database load balancing (Section 1.2).

Queries are routed uniformly at random to ``K`` servers; each server's
substream is a Bernoulli(1/K) sample of the workload.  The experiment sweeps
``K`` and the workload (skewed static workload, distribution shift, and an
adaptive client) and reports the worst per-server discrepancy against the
global stream, together with the stream length the theory says is needed for
every server to be epsilon-representative.  The reproduced shape: once the
stream length passes the theory's requirement the worst server error falls
below epsilon, for every workload including the adaptive client.
"""

from __future__ import annotations

import numpy as np

from ..adversary import GreedyDensityAdversary
from ..applications.load_balancing import (
    required_stream_length,
    simulate_load_balancing,
)
from ..setsystems import Prefix, PrefixSystem
from ..streams.generators import query_workload, two_phase_stream
from .config import ExperimentConfig
from .metrics import exceedance_rate, summarize
from .runner import monte_carlo
from .tables import ExperimentResult


def run_load_balancing(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E12: per-server representativeness of randomly routed query streams."""
    config = config or ExperimentConfig()
    universe_size = int(config.extra("lb_universe_size", 512))
    system = PrefixSystem(universe_size)
    server_counts = tuple(config.extra("server_counts", (4, 8)))

    result = ExperimentResult(
        experiment_id="E12",
        title="Distributed load balancing — every server's substream is representative",
        parameters={
            "epsilon": config.epsilon,
            "delta": config.delta,
            "universe_size": universe_size,
            "trials": config.trials,
        },
    )

    for num_servers in server_counts:
        needed = required_stream_length(
            num_servers, system.log_cardinality(), config.epsilon, config.delta
        )
        static_length = max(config.stream_length, needed)
        # The adaptive client re-scans the receiving server's substream every
        # round, so its stream is kept at the base length to bound runtime;
        # the note records both figures.
        adaptive_length = config.stream_length
        result.note(
            f"K={num_servers}: theory requires n >= {needed}; static workloads use "
            f"n={static_length}, the adaptive client uses n={adaptive_length}"
        )
        for workload in ("skewed-queries", "distribution-shift", "adaptive-client"):
            stream_length = adaptive_length if workload == "adaptive-client" else static_length

            def trial(rng: np.random.Generator, _index: int) -> dict:
                if workload == "skewed-queries":
                    report = simulate_load_balancing(
                        query_workload(stream_length, universe_size, seed=rng),
                        num_servers,
                        system,
                        seed=rng,
                    )
                elif workload == "distribution-shift":
                    report = simulate_load_balancing(
                        two_phase_stream(stream_length, universe_size, seed=rng),
                        num_servers,
                        system,
                        seed=rng,
                    )
                else:
                    adversary = GreedyDensityAdversary(
                        target_range=Prefix(universe_size // 2),
                        in_range_element=1,
                        out_range_element=universe_size,
                    )
                    report = simulate_load_balancing(
                        None,
                        num_servers,
                        system,
                        adversary=adversary,
                        stream_length=stream_length,
                        seed=rng,
                    )
                return {
                    "worst_error": report.worst_error,
                    "mean_error": report.mean_error,
                    "load_imbalance": report.load_imbalance,
                }

            outcomes = monte_carlo(trial, config.trials, seed=config.seed)
            worst_errors = [o["worst_error"] for o in outcomes]
            result.add_row(
                num_servers=num_servers,
                stream_length=stream_length,
                workload=workload,
                mean_worst_server_error=summarize(worst_errors).mean,
                max_worst_server_error=summarize(worst_errors).maximum,
                violation_rate=exceedance_rate(worst_errors, config.epsilon),
                mean_load_imbalance=summarize(
                    [o["load_imbalance"] for o in outcomes]
                ).mean,
            )
    return result
