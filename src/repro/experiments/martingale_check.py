"""E13 — empirical verification of the martingale claims (Claims 4.2 and 4.3).

For a fixed range ``R`` (the lower half of the universe) and the Figure-3
attack (the most adaptive opponent available), the experiment tracks the
``Z^R_i`` processes online during real games and verifies:

* every step difference respects the claimed bound (``1/(np)`` for Bernoulli,
  ``i/k`` for reservoir),
* the empirical mean drift per step is statistically indistinguishable from 0
  (martingale property),
* the final deviation ``|Z_n|`` exceeds the paper's Freedman-based prediction
  far less often than the predicted tail probability.
"""

from __future__ import annotations

import numpy as np

from ..adversary import ThresholdAttackAdversary
from ..core.concentration import freedman_tail
from ..core.martingale import (
    BernoulliMartingaleTracker,
    ReservoirMartingaleTracker,
    empirical_drift,
)
from ..samplers import BernoulliSampler, ReservoirSampler
from ..setsystems import Prefix
from .config import ExperimentConfig
from .metrics import summarize
from .runner import monte_carlo
from .tables import ExperimentResult


def run_martingale_check(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E13: the Z-processes of Claims 4.2/4.3 behave as claimed during real attacks."""
    config = config or ExperimentConfig()
    n = config.stream_length
    universe_size = config.universe_size
    target = Prefix(universe_size // 2)
    probability = float(config.extra("martingale_probability", 0.1))
    reservoir_size = int(config.extra("martingale_reservoir", 50))

    result = ExperimentResult(
        experiment_id="E13",
        title="Claims 4.2 / 4.3 — martingale structure under attack",
        parameters={
            "stream_length": n,
            "universe_size": universe_size,
            "bernoulli_p": probability,
            "reservoir_k": reservoir_size,
            "trials": config.trials,
        },
    )

    # ------------------------------------------------------------------
    # Bernoulli (Claim 4.2)
    # ------------------------------------------------------------------
    def bernoulli_trial(rng: np.random.Generator, _index: int) -> dict:
        sampler = BernoulliSampler(probability, seed=rng)
        adversary = ThresholdAttackAdversary.for_bernoulli(
            probability, n, universe_size=universe_size
        )
        tracker = BernoulliMartingaleTracker(n, probability)
        for round_index in range(1, n + 1):
            element = adversary.next_element(round_index, sampler.sample)
            update = sampler.process(element)
            adversary.observe_update(update)
            tracker.record_step(in_range=element in target, sampled=update.accepted)
        trace = tracker.trace
        deviation = abs(trace.final_value)
        return {
            "within_difference_bounds": trace.differences_within_bounds(),
            "drift": empirical_drift(trace.values),
            "final_deviation": deviation,
            "freedman_exceeds_10pct": deviation > _freedman_quantile(trace, 0.10),
        }

    bernoulli_outcomes = monte_carlo(bernoulli_trial, config.trials, seed=config.seed)
    result.add_row(
        mechanism="bernoulli",
        claim="4.2",
        difference_bound_violations=sum(
            1 for o in bernoulli_outcomes if not o["within_difference_bounds"]
        ),
        mean_step_drift=summarize([o["drift"] for o in bernoulli_outcomes]).mean,
        mean_final_deviation=summarize(
            [o["final_deviation"] for o in bernoulli_outcomes]
        ).mean,
        exceeds_freedman_10pct_rate=sum(
            1 for o in bernoulli_outcomes if o["freedman_exceeds_10pct"]
        )
        / len(bernoulli_outcomes),
    )

    # ------------------------------------------------------------------
    # Reservoir (Claim 4.3)
    # ------------------------------------------------------------------
    def reservoir_trial(rng: np.random.Generator, _index: int) -> dict:
        sampler = ReservoirSampler(reservoir_size, seed=rng)
        adversary = ThresholdAttackAdversary.for_reservoir(
            reservoir_size, n, universe_size=universe_size
        )
        tracker = ReservoirMartingaleTracker(reservoir_size)
        for round_index in range(1, n + 1):
            element = adversary.next_element(round_index, sampler.sample)
            update = sampler.process(element)
            adversary.observe_update(update)
            sample_hits = sum(1 for value in sampler.sample if value in target)
            tracker.record_step(in_range=element in target, sample_hits=sample_hits)
        trace = tracker.trace
        # Claim 4.3's Z is on the "count" scale; normalise by n for reporting.
        deviation = abs(trace.final_value) / n
        return {
            "within_difference_bounds": trace.differences_within_bounds(),
            "drift": empirical_drift(trace.values) / n,
            "final_deviation": deviation,
            "freedman_exceeds_10pct": abs(trace.final_value)
            > _freedman_quantile(trace, 0.10),
        }

    reservoir_outcomes = monte_carlo(reservoir_trial, config.trials, seed=config.seed)
    result.add_row(
        mechanism="reservoir",
        claim="4.3",
        difference_bound_violations=sum(
            1 for o in reservoir_outcomes if not o["within_difference_bounds"]
        ),
        mean_step_drift=summarize([o["drift"] for o in reservoir_outcomes]).mean,
        mean_final_deviation=summarize(
            [o["final_deviation"] for o in reservoir_outcomes]
        ).mean,
        exceeds_freedman_10pct_rate=sum(
            1 for o in reservoir_outcomes if o["freedman_exceeds_10pct"]
        )
        / len(reservoir_outcomes),
    )
    result.note(
        "`exceeds_freedman_10pct_rate` should stay at or below 0.10: it counts how "
        "often |Z_n| exceeded the deviation whose Freedman tail probability is 10%"
    )
    return result


def _freedman_quantile(trace, tail_probability: float) -> float:
    """The deviation whose Freedman tail bound equals ``tail_probability`` for this trace."""
    low, high = 0.0, 1.0
    variance_sum = sum(trace.variance_bounds)
    max_difference = max(trace.difference_bounds, default=0.0)
    # Find an upper bracket first.
    while freedman_tail(high, variance_sum, max_difference) > tail_probability:
        high *= 2.0
        if high > 1e12:
            break
    for _ in range(80):
        mid = (low + high) / 2.0
        if freedman_tail(mid, variance_sum, max_difference) > tail_probability:
            low = mid
        else:
            high = mid
    return high
