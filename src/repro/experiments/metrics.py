"""Summary statistics used when aggregating Monte-Carlo trials."""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a collection of real values."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        """Flatten into a dict, optionally prefixing the keys (for table rows)."""
        return {
            f"{prefix}mean": self.mean,
            f"{prefix}std": self.std,
            f"{prefix}min": self.minimum,
            f"{prefix}median": self.median,
            f"{prefix}max": self.maximum,
        }


def summarize(values: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` of the values (at least one value required)."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ConfigurationError("cannot summarise an empty collection")
    count = len(data)
    mean = sum(data) / count
    variance = sum((v - mean) ** 2 for v in data) / count
    middle = count // 2
    if count % 2 == 1:
        median = data[middle]
    else:
        median = 0.5 * (data[middle - 1] + data[middle])
    return Summary(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=data[0],
        median=median,
        maximum=data[-1],
    )


def failure_rate(outcomes: Sequence[bool]) -> float:
    """Fraction of ``False`` outcomes — the empirical delta of a robustness run."""
    if not outcomes:
        raise ConfigurationError("cannot compute a failure rate over no outcomes")
    return sum(1 for outcome in outcomes if not outcome) / len(outcomes)


def wilson_interval(successes: int, trials: int, confidence_z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Used to attach uncertainty to empirical failure rates so that
    EXPERIMENTS.md can state "failure rate 0/30 (95% CI [0, 0.11])" rather
    than a bare zero.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes must lie in [0, {trials}], got {successes}"
        )
    proportion = successes / trials
    z2 = confidence_z**2
    denominator = 1.0 + z2 / trials
    centre = (proportion + z2 / (2.0 * trials)) / denominator
    margin = (
        confidence_z
        * math.sqrt(proportion * (1.0 - proportion) / trials + z2 / (4.0 * trials**2))
        / denominator
    )
    return (max(0.0, centre - margin), min(1.0, centre + margin))


def exceedance_rate(values: Sequence[float], threshold: float) -> float:
    """Fraction of values strictly exceeding the threshold (empirical tail probability)."""
    if not values:
        raise ConfigurationError("cannot compute an exceedance rate over no values")
    return sum(1 for value in values if value > threshold) / len(values)
