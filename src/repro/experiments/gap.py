"""E6 — the VC-dimension vs cardinality gap (the paper's central message).

The prefix system has VC dimension 1 regardless of the universe size ``N``,
but cardinality ``N``.  The classical static bound therefore prescribes a
sample size independent of ``N``; Theorem 1.2's adaptive bound scales with
``ln N``; and Theorem 1.3 says the gap is real.

The experiment materialises the gap with two universes over the same stream
length:

* a **huge universe** (thousands of bits, built exactly with Python integers
  and large enough for the Figure-3 attack to survive the whole stream against
  the VC-sized reservoir): the VC-sized reservoir is fine on a static stream
  but is wrecked by the attack, while the ``ln N``-sized "reservoir" the
  theory demands is no longer sublinear — which is exactly the price
  Theorem 1.3 proves unavoidable;
* a **moderate universe** (``2^40``): here ``ln N`` is small, the
  Theorem 1.2-sized reservoir is comfortably sublinear, and the same attack
  cannot push it past ``epsilon``.
"""

from __future__ import annotations

import numpy as np

from ..adversary import (
    ThresholdAttackAdversary,
    UniformAdversary,
    run_adaptive_game,
    sufficient_universe_size,
)
from ..core.bounds import reservoir_adaptive_size, reservoir_static_size
from ..samplers import ReservoirSampler
from ..setsystems import PrefixSystem
from .config import ExperimentConfig
from .metrics import exceedance_rate, summarize
from .runner import monte_carlo
from .tables import ExperimentResult


def run_static_vs_adaptive_gap(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E6: VC-sized samples survive static streams but not adaptive ones."""
    config = config or ExperimentConfig()
    n = config.stream_length
    vc_size = reservoir_static_size(1, config.epsilon, config.delta).size

    # Huge universe: sized so the Figure-3 attack provably survives n rounds
    # against the VC-sized reservoir.  Moderate universe: 2^40.
    probe = ThresholdAttackAdversary.for_reservoir(vc_size, n, universe_size=3)
    huge_universe = sufficient_universe_size(
        vc_size * (1.0 + max(0.0, np.log(n / vc_size))), n, probe.step_fraction
    )
    moderate_universe = int(config.extra("gap_universe_size", 2**40))

    huge_system = PrefixSystem(huge_universe)
    moderate_system = PrefixSystem(moderate_universe)
    adaptive_size_moderate = reservoir_adaptive_size(
        moderate_system.log_cardinality(), config.epsilon, config.delta
    ).size
    adaptive_size_huge = reservoir_adaptive_size(
        huge_system.log_cardinality(), config.epsilon, config.delta
    ).size

    result = ExperimentResult(
        experiment_id="E6",
        title="VC-dimension vs cardinality — the static/adaptive gap",
        parameters={
            "epsilon": config.epsilon,
            "delta": config.delta,
            "stream_length": n,
            "vc_size": vc_size,
            "huge_universe_bits": huge_universe.bit_length(),
            "moderate_universe": moderate_universe,
            "trials": config.trials,
        },
    )
    result.note(
        f"ln|R| = {huge_system.log_cardinality():.0f} (huge) vs "
        f"{moderate_system.log_cardinality():.1f} (moderate); Theorem 1.2 sizes: "
        f"k = {adaptive_size_huge} (huge, not sublinear at this n — the price "
        f"Theorem 1.3 proves necessary) vs k = {adaptive_size_moderate} (moderate)"
    )

    rows = (
        ("huge", "vc-sized", vc_size, "static"),
        ("huge", "vc-sized", vc_size, "adaptive"),
        ("huge", "lnR-sized", min(adaptive_size_huge, n), "adaptive"),
        ("moderate", "vc-sized", vc_size, "adaptive"),
        ("moderate", "lnR-sized", adaptive_size_moderate, "static"),
        ("moderate", "lnR-sized", adaptive_size_moderate, "adaptive"),
    )
    for universe_label, sizing_label, size, regime in rows:
        universe_size = huge_universe if universe_label == "huge" else moderate_universe
        system = huge_system if universe_label == "huge" else moderate_system

        def trial(rng: np.random.Generator, _index: int) -> float:
            sampler = ReservoirSampler(size, seed=rng)
            if regime == "static":
                adversary = UniformAdversary(min(universe_size, 2**60), seed=rng)
            else:
                adversary = ThresholdAttackAdversary.for_reservoir(
                    size, n, universe_size=universe_size
                )
            outcome = run_adaptive_game(
                sampler, adversary, n, set_system=system, epsilon=config.epsilon,
                keep_updates=False,
            )
            assert outcome.error is not None
            return outcome.error

        errors = monte_carlo(trial, config.trials, seed=config.seed)
        stats = summarize(errors)
        result.add_row(
            universe=universe_label,
            sizing=sizing_label,
            reservoir_size=size,
            adversary=regime,
            mean_error=stats.mean,
            max_error=stats.maximum,
            failure_rate=exceedance_rate(errors, config.epsilon),
            robust=(exceedance_rate(errors, config.epsilon) <= config.delta),
        )
    result.note(
        "static streams over the huge universe are drawn uniformly from its first "
        "2^60 values; only the order structure matters for prefix densities"
    )
    return result
