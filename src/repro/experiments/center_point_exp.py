"""E10 — center points from samples (Section 1.2, "Center points").

A 2-D point stream is sampled with a reservoir; the deepest point of the
*sample* (approximate Tukey depth over a direction grid) is then evaluated for
depth within the *full stream*.  The paper's transfer lemma says that with an
``epsilon = beta / 5`` halfspace approximation, a ``(6/5) beta``-center of the
sample is a ``beta``-center of the stream; the experiment reports how often
that transfer holds for the Theorem 1.2 sample size (and an undersized one),
on both clustered and skewed point streams.
"""

from __future__ import annotations

import numpy as np

from ..applications.center_points import center_from_sample
from ..core.bounds import reservoir_adaptive_size
from ..samplers import ReservoirSampler
from ..setsystems import HalfspaceSystem
from ..streams.generators import clustered_points
from .config import ExperimentConfig
from .metrics import summarize
from .runner import monte_carlo
from .tables import ExperimentResult


def run_center_points(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E10: do sample-derived center points remain centers of the full stream?"""
    config = config or ExperimentConfig()
    n = config.stream_length
    side = int(config.extra("grid_side", 64))
    beta = float(config.extra("beta", 0.3))
    dimension = 2
    system = HalfspaceSystem(side, dimension, directions=32)
    # Sizing from the paper's recipe (epsilon = beta / 5) is very large for a
    # quick experiment; the default uses epsilon = beta / 2 and records the
    # substitution, plus an undersized row for contrast.
    epsilon = float(config.extra("center_epsilon", beta / 2.0))
    full_size = reservoir_adaptive_size(system.log_cardinality(), epsilon, config.delta).size
    sizes = {"theorem-size": min(full_size, max(2, n // 2)), "undersized": max(4, full_size // 20)}

    result = ExperimentResult(
        experiment_id="E10",
        title="Center points computed on the sample, evaluated on the stream",
        parameters={
            "beta": beta,
            "epsilon": epsilon,
            "stream_length": n,
            "grid_side": side,
            "trials": config.trials,
        },
    )
    result.note(
        "sampling epsilon set to beta/2 rather than the paper's beta/5 to keep the "
        "sample sublinear at experiment scale; the transfer inequality still has "
        "slack and the experiment reports whether it held"
    )

    for label, size in sizes.items():
        for clusters in (1, 5):
            def trial(rng: np.random.Generator, _index: int) -> dict:
                points = clustered_points(
                    n, side, dimension, clusters=clusters, spread=0.15, seed=rng
                )
                sampler = ReservoirSampler(size, seed=rng)
                sampler.extend(points, updates=False)
                sample = list(sampler.sample)
                outcome = center_from_sample(sample, points, beta=beta, seed=rng)
                return {
                    "stream_depth": outcome.stream_depth,
                    "sample_depth": outcome.sample_depth,
                    "transfer_held": outcome.valid_for_stream,
                }

            outcomes = monte_carlo(trial, config.trials, seed=config.seed)
            result.add_row(
                sizing=label,
                reservoir_size=size,
                clusters=clusters,
                mean_sample_depth=summarize([o["sample_depth"] for o in outcomes]).mean,
                mean_stream_depth=summarize([o["stream_depth"] for o in outcomes]).mean,
                transfer_success_rate=sum(1 for o in outcomes if o["transfer_held"])
                / len(outcomes),
            )
    return result
