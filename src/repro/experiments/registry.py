"""Registry mapping experiment identifiers to their runner functions.

Used by the CLI (``repro-experiments run E3``) and by the benchmark suite,
which iterates over the registry so that every experiment in DESIGN.md has a
benchmark target by construction.
"""

from __future__ import annotations

from collections.abc import Callable

from ..exceptions import ConfigurationError
from .attack import run_attack_lower_bound, run_bisection_attack
from .center_point_exp import run_center_points
from .clustering_exp import run_clustering
from .config import ExperimentConfig
from .continuous import run_continuous_robustness
from .deterministic_comparison import run_deterministic_comparison
from .gap import run_static_vs_adaptive_gap
from .heavy_hitter_exp import run_heavy_hitters
from .load_balancing_exp import run_load_balancing
from .martingale_check import run_martingale_check
from .quantile_exp import run_quantile_robustness
from .range_query_exp import run_range_queries
from .robustness import (
    run_bernoulli_robustness,
    run_eviction_policy_ablation,
    run_knowledge_model_ablation,
    run_reservoir_robustness,
)
from .tables import ExperimentResult

ExperimentRunner = Callable[[ExperimentConfig], ExperimentResult]

#: All experiments, keyed by the identifiers used in DESIGN.md / EXPERIMENTS.md.
EXPERIMENTS: dict[str, ExperimentRunner] = {
    "E1": run_bernoulli_robustness,
    "E1a": run_knowledge_model_ablation,
    "E2": run_reservoir_robustness,
    "E2a": run_eviction_policy_ablation,
    "E3": run_attack_lower_bound,
    "E4": run_bisection_attack,
    "E5": run_continuous_robustness,
    "E6": run_static_vs_adaptive_gap,
    "E7": run_quantile_robustness,
    "E8": run_heavy_hitters,
    "E9": run_range_queries,
    "E10": run_center_points,
    "E11": run_clustering,
    "E12": run_load_balancing,
    "E13": run_martingale_check,
    "E14": run_deterministic_comparison,
}


def get_experiment(identifier: str) -> ExperimentRunner:
    """Look up an experiment runner by identifier (case-insensitive)."""
    key = identifier.strip().upper()
    # Ablation identifiers keep a lowercase suffix ("E1a"); normalise gently.
    candidates = {name.upper(): name for name in EXPERIMENTS}
    if key not in candidates:
        raise ConfigurationError(
            f"unknown experiment {identifier!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[candidates[key]]


def run_experiment(
    identifier: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Run one experiment by identifier."""
    runner = get_experiment(identifier)
    return runner(config or ExperimentConfig())


def run_all(config: ExperimentConfig | None = None) -> dict[str, ExperimentResult]:
    """Run every registered experiment and return the results keyed by identifier."""
    config = config or ExperimentConfig()
    return {identifier: runner(config) for identifier, runner in EXPERIMENTS.items()}
