"""E1 / E2 — adaptive robustness of Bernoulli and reservoir sampling (Theorem 1.2).

For a moderate ordered universe (where Theorem 1.2's ``ln|R|``-sized samples
are comfortably sublinear), the experiment sweeps the sample size as a
multiple of the theorem's bound and plays the strongest adaptive attacks in
the library against each configuration.  The reproduced shape is:

* at (and above) the theorem's sample size, the worst observed error stays at
  or below ``epsilon`` and the empirical failure rate is at most ``delta``;
* well below the bound, the adaptive attacks push the error past ``epsilon``
  (while a static stream of the same length often still looks fine — that
  contrast is E6's subject).
"""

from __future__ import annotations

import math
from functools import partial
from collections.abc import Callable

import numpy as np

from ..adversary import (
    Adversary,
    BatchGameRunner,
    GreedyDensityAdversary,
    ThresholdAttackAdversary,
    UniformAdversary,
    run_adaptive_game,
)
from ..core.bounds import (
    bernoulli_adaptive_rate,
    reservoir_adaptive_size,
    reservoir_attack_threshold,
)
from ..samplers import BernoulliSampler, ReservoirSampler
from ..setsystems import Prefix, PrefixSystem
from .config import ExperimentConfig
from .metrics import exceedance_rate, summarize
from .runner import monte_carlo
from .tables import ExperimentResult


def _build_sampler(mechanism: str, parameter: float, rng: np.random.Generator):
    """Module-level sampler factory (picklable, so trial grids can fan out)."""
    if mechanism == "bernoulli":
        return BernoulliSampler(parameter, seed=rng)
    return ReservoirSampler(int(parameter), seed=rng)


def _build_figure3(
    mechanism: str,
    sample_parameter: float,
    stream_length: int,
    universe_size: int,
    _rng: np.random.Generator,
) -> Adversary:
    if mechanism == "bernoulli":
        return ThresholdAttackAdversary.for_bernoulli(
            probability=sample_parameter,
            stream_length=stream_length,
            universe_size=universe_size,
        )
    return ThresholdAttackAdversary.for_reservoir(
        reservoir_size=max(1, int(sample_parameter)),
        stream_length=stream_length,
        universe_size=universe_size,
    )


def _build_greedy(universe_size: int, _rng: np.random.Generator) -> Adversary:
    return GreedyDensityAdversary(
        target_range=Prefix(universe_size // 2),
        in_range_element=1,
        out_range_element=universe_size,
    )


def _build_static(universe_size: int, rng: np.random.Generator) -> Adversary:
    return UniformAdversary(universe_size, seed=rng)


def _adversary_factories(
    config: ExperimentConfig,
    mechanism: str,
    sample_parameter: float,
) -> dict[str, Callable[[np.random.Generator], Adversary]]:
    """The attack portfolio used by E1/E2 (each factory builds a fresh adversary).

    Factories are :func:`functools.partial` applications of module-level
    builders over primitive arguments, which keeps them picklable — the
    requirement for :class:`~repro.adversary.batch.BatchGameRunner` to sweep
    the grid across worker processes.
    """
    universe_size = config.universe_size
    return {
        "figure3": partial(
            _build_figure3, mechanism, sample_parameter, config.stream_length, universe_size
        ),
        "greedy": partial(_build_greedy, universe_size),
        "static-uniform": partial(_build_static, universe_size),
    }


def _run_mechanism(
    result: ExperimentResult,
    config: ExperimentConfig,
    mechanism: str,
    multipliers: tuple[float, ...],
) -> None:
    system = PrefixSystem(config.universe_size)
    log_cardinality = system.log_cardinality()
    if mechanism == "bernoulli":
        bound = bernoulli_adaptive_rate(
            log_cardinality, config.epsilon, config.delta, config.stream_length
        )
        base_parameter = bound.probability if bound.probability is not None else 1.0
    else:
        bound = reservoir_adaptive_size(log_cardinality, config.epsilon, config.delta)
        base_parameter = float(bound.size)

    runner = BatchGameRunner(
        config.stream_length,
        set_system=system,
        epsilon=config.epsilon,
        seed=config.seed,
    )
    for multiplier in multipliers:
        if mechanism == "bernoulli":
            parameter = min(1.0, max(base_parameter * multiplier, 1.0 / config.stream_length))
        else:
            parameter = max(1.0, round(base_parameter * multiplier))
        # The figure3 attack is tuned to the cell's sample parameter, so each
        # multiplier sweeps its own (1 sampler × attacks × trials) grid.  The
        # multiplier is part of the sampler label so that every row draws its
        # own sampler substreams even when parameter clamping makes two
        # multipliers coincide on the same parameter value.
        cells = runner.run_grid(
            samplers={f"{mechanism}@x{multiplier}": partial(_build_sampler, mechanism, parameter)},
            adversaries=_adversary_factories(config, mechanism, parameter),
            trials=config.trials,
        )
        for cell in cells:
            result.add_row(
                mechanism=mechanism,
                size_multiplier=multiplier,
                parameter=(round(parameter, 6) if mechanism == "bernoulli" else int(parameter)),
                adversary=cell.adversary,
                mean_error=cell.mean_error,
                max_error=cell.max_error,
                failure_rate=cell.failure_rate,
                robust=(cell.failure_rate <= config.delta),
            )


def run_bernoulli_robustness(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E1: Bernoulli sampling robustness vs sample size under adaptive attack."""
    config = config or ExperimentConfig()
    multipliers = tuple(config.extra("multipliers", (0.1, 0.5, 1.0, 2.0)))
    result = ExperimentResult(
        experiment_id="E1",
        title="Theorem 1.2 — adaptive robustness of BernoulliSample",
        parameters={
            "epsilon": config.epsilon,
            "delta": config.delta,
            "stream_length": config.stream_length,
            "universe_size": config.universe_size,
            "trials": config.trials,
        },
    )
    result.note(
        f"ln|R| = {math.log(config.universe_size):.2f} for the prefix system; "
        "multiplier 1.0 is exactly the Theorem 1.2 rate"
    )
    _run_mechanism(result, config, "bernoulli", multipliers)
    return result


def run_reservoir_robustness(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E2: Reservoir sampling robustness vs sample size under adaptive attack."""
    config = config or ExperimentConfig()
    multipliers = tuple(config.extra("multipliers", (0.1, 0.5, 1.0, 2.0)))
    result = ExperimentResult(
        experiment_id="E2",
        title="Theorem 1.2 — adaptive robustness of ReservoirSample",
        parameters={
            "epsilon": config.epsilon,
            "delta": config.delta,
            "stream_length": config.stream_length,
            "universe_size": config.universe_size,
            "trials": config.trials,
        },
    )
    result.note(
        "k at multiplier 1.0 equals ceil(2 (ln|R| + ln(2/delta)) / eps^2) "
        "from Theorem 1.2"
    )
    _run_mechanism(result, config, "reservoir", multipliers)
    return result


def run_eviction_policy_ablation(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E2a: ablation — reservoir eviction policy.

    Only the uniform (Vitter) eviction policy is covered by the paper's
    analysis.  FIFO eviction keeps only recent elements (already broken by a
    *static* sorted stream) and min-value eviction keeps only large elements
    (broken by any stream), while the Theorem 1.2-sized uniform reservoir
    survives both workloads plus the Figure-3 attack.
    """
    config = config or ExperimentConfig()
    from ..adversary import SortedAdversary, UniformAdversary as _Uniform  # local alias

    # Use a stream no longer than the universe so the sorted workload fits.
    stream_length = min(config.stream_length, config.universe_size)
    system = PrefixSystem(config.universe_size)
    bound = reservoir_adaptive_size(system.log_cardinality(), config.epsilon, config.delta)
    result = ExperimentResult(
        experiment_id="E2a",
        title="Ablation — reservoir eviction policy",
        parameters={
            "epsilon": config.epsilon,
            "reservoir_size": bound.size,
            "stream_length": stream_length,
            "universe_size": config.universe_size,
            "trials": config.trials,
        },
    )
    for policy in ("uniform", "fifo", "min-value"):
        for workload in ("static-uniform", "static-sorted", "figure3"):
            def trial(rng: np.random.Generator, _index: int) -> float:
                sampler = ReservoirSampler(bound.size, seed=rng, eviction=policy)
                if workload == "static-uniform":
                    adversary: object = _Uniform(config.universe_size, seed=rng)
                elif workload == "static-sorted":
                    adversary = SortedAdversary()
                else:
                    adversary = ThresholdAttackAdversary.for_reservoir(
                        bound.size, stream_length, universe_size=config.universe_size
                    )
                outcome = run_adaptive_game(
                    sampler,
                    adversary,
                    stream_length,
                    set_system=system,
                    epsilon=config.epsilon,
                    keep_updates=False,
                )
                assert outcome.error is not None
                return outcome.error

            errors = monte_carlo(trial, config.trials, seed=config.seed)
            stats = summarize(errors)
            result.add_row(
                eviction_policy=policy,
                workload=workload,
                mean_error=stats.mean,
                max_error=stats.maximum,
                failure_rate=exceedance_rate(errors, config.epsilon),
            )
    return result


def run_knowledge_model_ablation(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E1a: ablation — how much the adversary's knowledge of the state matters.

    The Figure-3 attack is played against a reservoir *below* the Theorem 1.3
    threshold under the three knowledge models of the game runner.  With full
    or per-round-update knowledge the attack wrecks the sample; stripped of
    feedback ("oblivious") the very same strategy degenerates into a fixed
    stream and the sample stays representative — adaptivity, not the stream's
    content, is what the paper's model is about.
    """
    config = config or ExperimentConfig()
    from ..adversary.threshold import recommended_universe_size

    n = config.stream_length
    universe_size = recommended_universe_size(n)
    system = PrefixSystem(universe_size)
    undersized = max(2, int(reservoir_attack_threshold(system.log_cardinality(), n) / 2))
    result = ExperimentResult(
        experiment_id="E1a",
        title="Ablation — adversary knowledge model (reservoir below the attack threshold)",
        parameters={
            "reservoir_size": undersized,
            "stream_length": n,
            "log_universe": round(system.log_cardinality(), 1),
            "trials": config.trials,
        },
    )
    for knowledge in ("full", "updates", "oblivious"):
        def trial(rng: np.random.Generator, _index: int) -> float:
            sampler = ReservoirSampler(undersized, seed=rng)
            adversary = ThresholdAttackAdversary.for_reservoir(
                undersized, n, universe_size=universe_size
            )
            outcome = run_adaptive_game(
                sampler,
                adversary,
                n,
                set_system=system,
                epsilon=config.epsilon,
                knowledge=knowledge,  # type: ignore[arg-type]
                keep_updates=False,
            )
            assert outcome.error is not None
            return outcome.error

        errors = monte_carlo(trial, config.trials, seed=config.seed)
        stats = summarize(errors)
        result.add_row(
            knowledge=knowledge,
            mean_error=stats.mean,
            max_error=stats.maximum,
            failure_rate=exceedance_rate(errors, config.epsilon),
        )
    return result
