"""E5 — continuous robustness of reservoir sampling (Theorem 1.4).

The continuous adaptive game judges the sample against *every prefix* of the
stream.  The experiment runs reservoir sampling with three different sizes —
the Theorem 1.2 "endpoint-only" size, the Theorem 1.4 continuous size, and
the naive union-bound size discussed in the proof — against adaptive and
shifting-distribution streams, recording the maximum over checkpoints of the
worst-range error.  It also demonstrates the footnote that Bernoulli sampling
cannot be continuously robust: its very first rounds have, with constant
probability, an empty or tiny sample that misrepresents the prefix.
"""

from __future__ import annotations

import numpy as np

from ..adversary import (
    GreedyDensityAdversary,
    StaticAdversary,
    ThresholdAttackAdversary,
    UniformAdversary,
    run_continuous_game,
)
from ..core.bounds import (
    reservoir_adaptive_size,
    reservoir_continuous_size,
    reservoir_continuous_size_union_bound,
)
from ..samplers import BernoulliSampler, ReservoirSampler
from ..setsystems import Prefix, PrefixSystem
from ..streams.generators import two_phase_stream
from .config import ExperimentConfig
from .metrics import exceedance_rate, summarize
from .runner import monte_carlo
from .tables import ExperimentResult


def run_continuous_robustness(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E5: maximum prefix error of reservoir sampling across the whole stream."""
    config = config or ExperimentConfig()
    n = config.stream_length
    system = PrefixSystem(config.universe_size)
    log_cardinality = system.log_cardinality()

    endpoint_size = reservoir_adaptive_size(log_cardinality, config.epsilon, config.delta).size
    continuous_size = reservoir_continuous_size(
        log_cardinality, config.epsilon, config.delta, n
    ).size
    union_bound_size = reservoir_continuous_size_union_bound(
        log_cardinality, config.epsilon, config.delta, n
    ).size

    result = ExperimentResult(
        experiment_id="E5",
        title="Theorem 1.4 — continuous robustness of ReservoirSample",
        parameters={
            "epsilon": config.epsilon,
            "delta": config.delta,
            "stream_length": n,
            "universe_size": config.universe_size,
            "trials": config.trials,
        },
    )
    result.note(
        f"reservoir sizes: endpoint-only (Thm 1.2) k={endpoint_size}, "
        f"continuous (Thm 1.4) k={continuous_size}, "
        f"naive union bound k={union_bound_size}"
    )

    def _adversary(kind: str, rng: np.random.Generator, reservoir_size: int):
        if kind == "figure3":
            return ThresholdAttackAdversary.for_reservoir(
                reservoir_size, n, universe_size=config.universe_size
            )
        if kind == "greedy":
            return GreedyDensityAdversary(
                target_range=Prefix(config.universe_size // 2),
                in_range_element=1,
                out_range_element=config.universe_size,
            )
        if kind == "shift":
            return StaticAdversary(
                two_phase_stream(n, config.universe_size, seed=rng)
            )
        return UniformAdversary(config.universe_size, seed=rng)

    adversary_kinds = tuple(config.extra("adversaries", ("figure3", "greedy", "shift")))
    size_rows = (
        ("thm1.2-endpoint", endpoint_size),
        ("thm1.4-continuous", continuous_size),
        ("union-bound", union_bound_size),
    )
    for label, size in size_rows:
        for kind in adversary_kinds:
            def trial(rng: np.random.Generator, _index: int) -> float:
                sampler = ReservoirSampler(size, seed=rng)
                adversary = _adversary(kind, rng, size)
                outcome = run_continuous_game(
                    sampler,
                    adversary,
                    n,
                    set_system=system,
                    epsilon=config.epsilon,
                    checkpoint_ratio=config.epsilon / 4.0,
                    keep_updates=False,
                )
                return outcome.max_checkpoint_error

            max_errors = monte_carlo(trial, config.trials, seed=config.seed)
            stats = summarize(max_errors)
            result.add_row(
                sizing=label,
                reservoir_size=size,
                adversary=kind,
                mean_max_error=stats.mean,
                worst_max_error=stats.maximum,
                violation_rate=exceedance_rate(max_errors, config.epsilon),
            )

    # Bernoulli cannot be continuously robust: evaluate its max prefix error.
    bernoulli_rate = min(1.0, 4.0 * endpoint_size / n)

    def bernoulli_trial(rng: np.random.Generator, _index: int) -> float:
        sampler = BernoulliSampler(bernoulli_rate, seed=rng)
        adversary = UniformAdversary(config.universe_size, seed=rng)
        outcome = run_continuous_game(
            sampler,
            adversary,
            n,
            set_system=system,
            epsilon=config.epsilon,
            checkpoint_ratio=config.epsilon / 4.0,
            keep_updates=False,
        )
        return outcome.max_checkpoint_error

    bernoulli_errors = monte_carlo(bernoulli_trial, config.trials, seed=config.seed)
    result.add_row(
        sizing="bernoulli-counterexample",
        reservoir_size=0,
        adversary="static-uniform",
        mean_max_error=summarize(bernoulli_errors).mean,
        worst_max_error=summarize(bernoulli_errors).maximum,
        violation_rate=exceedance_rate(bernoulli_errors, config.epsilon),
    )
    result.note(
        "the Bernoulli row illustrates the paper's footnote: early prefixes are "
        "misrepresented with constant probability, so continuous robustness fails "
        "regardless of the rate"
    )
    return result
