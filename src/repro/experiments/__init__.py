"""Experiment harness: Monte-Carlo runners, result tables and the per-theorem experiments."""

from .config import BENCHMARK_CONFIG, REPORT_CONFIG, ExperimentConfig
from .metrics import Summary, exceedance_rate, failure_rate, summarize, wilson_interval
from .registry import EXPERIMENTS, get_experiment, run_all, run_experiment
from .runner import monte_carlo, sweep
from .tables import ExperimentResult, Table

__all__ = [
    "BENCHMARK_CONFIG",
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentResult",
    "REPORT_CONFIG",
    "Summary",
    "Table",
    "exceedance_rate",
    "failure_rate",
    "get_experiment",
    "monte_carlo",
    "run_all",
    "run_experiment",
    "summarize",
    "sweep",
    "wilson_interval",
]
