"""E9 — sample-based range queries over a grid (Section 1.2, "Range queries").

Clustered points are streamed into a :class:`SampleRangeCounter` sized from
``ln |R| = O(d ln m)``; a panel of query boxes (including the worst box found
by the discrepancy sweep) is then answered from the sample and compared with
the exact counts.  Both a static stream and an adaptive greedy adversary
targeting one fixed box are used.  The reproduced shape: every query's
normalised error stays below ``epsilon`` at the prescribed sample size, under
both regimes.
"""

from __future__ import annotations

import numpy as np

from ..adversary import GreedyDensityAdversary, StaticAdversary, run_adaptive_game
from ..applications.range_queries import SampleRangeCounter, exact_range_count
from ..setsystems import RectangleSystem
from ..setsystems.rectangles import Box
from ..streams.generators import clustered_points
from .config import ExperimentConfig
from .metrics import summarize
from .runner import monte_carlo
from .tables import ExperimentResult


def _query_panel(side: int) -> list[Box]:
    """A fixed panel of query boxes spanning small, medium and large ranges."""
    half = side // 2
    quarter = side // 4
    return [
        Box((1.0, 1.0), (float(half), float(half))),
        Box((float(quarter), float(quarter)), (float(3 * quarter), float(3 * quarter))),
        Box((float(half), 1.0), (float(side), float(side))),
        Box((1.0, 1.0), (float(side), float(quarter))),
        Box((float(side - quarter), float(side - quarter)), (float(side), float(side))),
    ]


def run_range_queries(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E9: additive error of sample-based box counting, static and adversarial."""
    config = config or ExperimentConfig()
    n = config.stream_length
    side = int(config.extra("grid_side", 32))
    dimension = 2
    system = RectangleSystem(side, dimension, max_exact_candidates=200_000)
    queries = _query_panel(side)
    target_box = queries[0]

    result = ExperimentResult(
        experiment_id="E9",
        title="Range queries over [m]^2 from a robust sample",
        parameters={
            "epsilon": config.epsilon,
            "delta": config.delta,
            "stream_length": n,
            "grid_side": side,
            "trials": config.trials,
        },
    )

    for workload in ("static-clustered", "adaptive-greedy"):
        def trial(rng: np.random.Generator, _index: int) -> dict:
            counter = SampleRangeCounter(
                side=side,
                dimension=dimension,
                epsilon=config.epsilon,
                delta=config.delta,
                mechanism="reservoir",
                seed=rng,
            )
            if workload == "static-clustered":
                points = clustered_points(n, side, dimension, clusters=4, seed=rng)
                adversary = StaticAdversary(points)
            else:
                adversary = GreedyDensityAdversary(
                    target_range=target_box,
                    in_range_element=(1, 1),
                    out_range_element=(side, side),
                )
            outcome = run_adaptive_game(
                counter.sampler, adversary, n, keep_updates=False
            )
            stream = outcome.stream
            sample = list(outcome.sample)
            if not sample:
                return {"worst_query_error": 1.0, "discrepancy": 1.0, "sample_size": 0}
            worst_query_error = 0.0
            for box in queries:
                exact = exact_range_count(stream, box)
                estimate = (
                    sum(1 for point in sample if point in box) / len(sample) * len(stream)
                )
                worst_query_error = max(worst_query_error, abs(estimate - exact) / len(stream))
            discrepancy = system.max_discrepancy(stream, sample)
            return {
                "worst_query_error": worst_query_error,
                "discrepancy": discrepancy.error,
                "sample_size": len(sample),
            }

        outcomes = monte_carlo(trial, config.trials, seed=config.seed)
        result.add_row(
            workload=workload,
            mean_worst_query_error=summarize(
                [o["worst_query_error"] for o in outcomes]
            ).mean,
            max_worst_query_error=summarize(
                [o["worst_query_error"] for o in outcomes]
            ).maximum,
            mean_box_discrepancy=summarize([o["discrepancy"] for o in outcomes]).mean,
            mean_sample_size=summarize([float(o["sample_size"]) for o in outcomes]).mean,
        )
    result.note(
        f"ln|R| = {system.log_cardinality():.1f} for the box system; "
        "the reservoir is sized from it via Theorem 1.2"
    )
    return result
