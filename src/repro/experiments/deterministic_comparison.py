"""E14 — random sampling vs deterministic streaming summaries (Section 1.1).

The paper's discussion: deterministic algorithms are automatically robust to
adaptive adversaries but must examine every element and tend to be more
intricate; the point of Theorem 1.2 is that plain random sampling — which only
*stores* a tiny subset and is embarrassingly simple — is also robust once the
sample size carries a ``ln|R|`` factor.

The experiment runs four summaries over the same streams (a static uniform
stream and the median attack):

* reservoir sampling at the Theorem 1.2 size,
* Bernoulli sampling at the Theorem 1.2 rate,
* the deterministic Greenwald–Khanna quantile sketch,
* the deterministic merge-reduce epsilon-approximation, and
* the randomised KLL sketch (not covered by the paper's guarantees).

For each it reports the worst quantile error on the realised stream and the
memory footprint (stored items), reproducing the qualitative trade-off table
of Section 1.1.
"""

from __future__ import annotations

import numpy as np

from ..adversary import MedianAttackAdversary, UniformAdversary, run_adaptive_game
from ..applications.quantiles import empirical_quantile, rank_of
from ..core.bounds import reservoir_adaptive_size
from ..samplers import (
    BernoulliSampler,
    GreenwaldKhannaSketch,
    KLLSketch,
    MergeReduceSummary,
    ReservoirSampler,
)
from ..setsystems import PrefixSystem
from .config import ExperimentConfig
from .metrics import summarize
from .quantile_exp import QUANTILE_GRID
from .runner import monte_carlo
from .tables import ExperimentResult


def _worst_quantile_error_from_query(stream, query) -> float:
    """Worst rank error of a ``query(fraction) -> value`` interface on the stream.

    As in :func:`repro.applications.quantiles.quantile_rank_error`, ties are
    handled by treating the returned value's rank as the interval
    ``[#\\{x < v\\}, #\\{x <= v\\}] / n``: the error is zero when the target
    fraction falls inside that interval.
    """
    worst = 0.0
    n = len(stream)
    for fraction in QUANTILE_GRID:
        value = query(fraction)
        below = sum(1 for element in stream if element < value) / n
        at_or_below = rank_of(stream, value) / n
        if below <= fraction <= at_or_below:
            continue
        worst = max(worst, min(abs(fraction - below), abs(fraction - at_or_below)))
    return worst


def run_deterministic_comparison(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E14: error / memory trade-off of samplers vs deterministic sketches."""
    config = config or ExperimentConfig()
    n = config.stream_length
    universe_size = int(config.extra("quantile_universe_size", 2**20))
    system = PrefixSystem(universe_size)
    reservoir_size = reservoir_adaptive_size(
        system.log_cardinality(), config.epsilon, config.delta
    ).size
    bernoulli_rate = min(1.0, reservoir_size / n)

    result = ExperimentResult(
        experiment_id="E14",
        title="Section 1.1 — random sampling vs deterministic summaries",
        parameters={
            "epsilon": config.epsilon,
            "stream_length": n,
            "universe_size": universe_size,
            "reservoir_size": reservoir_size,
            "trials": config.trials,
        },
    )

    methods = ("reservoir", "bernoulli", "greenwald-khanna", "merge-reduce", "kll")
    for workload in ("static-uniform", "median-attack"):
        for method in methods:
            def trial(rng: np.random.Generator, _index: int) -> dict:
                # The adversarial stream is always generated against a
                # reservoir sampler (the attack needs a sampler to observe);
                # deterministic summaries then process the same realised
                # stream, which is exactly how a deployment would see it.
                shadow_sampler = ReservoirSampler(reservoir_size, seed=rng)
                if workload == "static-uniform":
                    adversary = UniformAdversary(universe_size, seed=rng)
                else:
                    adversary = MedianAttackAdversary(n, universe_size=universe_size)

                if method == "reservoir":
                    sampler = ReservoirSampler(reservoir_size, seed=rng)
                    outcome = run_adaptive_game(sampler, adversary, n, keep_updates=False)
                    stream, sample = outcome.stream, list(outcome.sample)
                    error = _worst_quantile_error_from_query(
                        stream, lambda fraction: empirical_quantile(sample, fraction)
                    )
                    memory = len(sample)
                elif method == "bernoulli":
                    sampler = BernoulliSampler(bernoulli_rate, seed=rng)
                    outcome = run_adaptive_game(sampler, adversary, n, keep_updates=False)
                    stream, sample = outcome.stream, list(outcome.sample)
                    if not sample:
                        return {"error": 1.0, "memory": 0}
                    error = _worst_quantile_error_from_query(
                        stream, lambda fraction: empirical_quantile(sample, fraction)
                    )
                    memory = len(sample)
                else:
                    outcome = run_adaptive_game(
                        shadow_sampler, adversary, n, keep_updates=False
                    )
                    stream = outcome.stream
                    if method == "greenwald-khanna":
                        sketch = GreenwaldKhannaSketch(config.epsilon / 2.0)
                    elif method == "merge-reduce":
                        sketch = MergeReduceSummary(config.epsilon / 2.0)
                    else:
                        sketch = KLLSketch(k=max(8, int(2.0 / config.epsilon)), seed=rng)
                    sketch.extend(stream)
                    error = _worst_quantile_error_from_query(stream, sketch.quantile_query)
                    memory = sketch.memory_footprint()
                return {"error": error, "memory": memory}

            outcomes = monte_carlo(trial, config.trials, seed=config.seed)
            result.add_row(
                workload=workload,
                method=method,
                mean_worst_quantile_error=summarize([o["error"] for o in outcomes]).mean,
                max_worst_quantile_error=summarize([o["error"] for o in outcomes]).maximum,
                mean_memory=summarize([float(o["memory"]) for o in outcomes]).mean,
                adaptive_robustness_guaranteed=(
                    method in ("reservoir", "bernoulli", "greenwald-khanna", "merge-reduce")
                ),
            )
    result.note(
        "deterministic summaries are robust by definition; the point of the row pair "
        "is that the plain samplers match their accuracy at comparable memory while "
        "only ever storing (and, for Bernoulli, only ever examining) a random subset"
    )
    return result
