"""Monte-Carlo trial runner with reproducible per-trial randomness.

Execution is delegated to the batched game engine
(:mod:`repro.adversary.batch`): trials run in-process by default and across
a process pool when ``workers`` (or the ``REPRO_WORKERS`` environment
variable) asks for it.  Seeding semantics are unchanged from the original
serial runner — each trial receives its own generator spawned from the
master seed — so experiment outputs are identical regardless of the worker
count.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

import numpy as np

from ..adversary.batch import run_monte_carlo
from ..exceptions import ConfigurationError
from ..rng import RandomState

T = TypeVar("T")


def monte_carlo(
    trial: Callable[[np.random.Generator, int], T],
    trials: int,
    seed: RandomState = None,
    workers: int | None = None,
) -> list[T]:
    """Run ``trial(rng, index)`` for ``trials`` independent generators.

    Each trial receives its own generator spawned from the master seed, so
    results are reproducible and trials are statistically independent even if
    a trial consumes a data-dependent amount of randomness.

    ``workers`` selects the number of worker processes (``None`` reads the
    ``REPRO_WORKERS`` environment variable, defaulting to in-process
    execution).  Parallel runs return exactly the serial results, in order;
    trials that cannot be pickled (closures over local state — most inline
    experiment trials) transparently run in-process.
    """
    return run_monte_carlo(trial, trials, seed=seed, workers=workers)


def sweep(
    values: Sequence,
    run_value: Callable[[object], T],
) -> list[T]:
    """Evaluate ``run_value`` on each value of a parameter sweep (in order)."""
    if len(values) == 0:
        raise ConfigurationError("a sweep needs at least one parameter value")
    return [run_value(value) for value in values]
