"""Monte-Carlo trial runner with reproducible per-trial randomness."""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RandomState, spawn_generators

T = TypeVar("T")


def monte_carlo(
    trial: Callable[[np.random.Generator, int], T],
    trials: int,
    seed: RandomState = None,
) -> list[T]:
    """Run ``trial(rng, index)`` for ``trials`` independent generators.

    Each trial receives its own generator spawned from the master seed, so
    results are reproducible and trials are statistically independent even if
    a trial consumes a data-dependent amount of randomness.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be >= 1, got {trials}")
    generators = spawn_generators(seed, trials)
    return [trial(generator, index) for index, generator in enumerate(generators)]


def sweep(
    values: Sequence,
    run_value: Callable[[object], T],
) -> list[T]:
    """Evaluate ``run_value`` on each value of a parameter sweep (in order)."""
    if len(values) == 0:
        raise ConfigurationError("a sweep needs at least one parameter value")
    return [run_value(value) for value in values]
