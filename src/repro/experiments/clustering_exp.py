"""E11 — clustering the sample instead of the stream (Section 1.2, "Clustering").

A clustered 2-D point stream is sampled with a reservoir; k-means run on the
sample is compared (by its cost on the *full* stream) against k-means run on
the full stream.  The stream is presented both in random order and in an
adversarially sorted order (all of cluster 1, then cluster 2, ...), which
defeats naive "cluster the first m points" shortcuts but not reservoir
sampling.  The reproduced shape: the sample-based cost stays within a few
percent of the full-data cost, in both orders, once the sample is a few
hundred points.
"""

from __future__ import annotations

import numpy as np

from ..applications.clustering import compare_sample_clustering
from ..samplers import ReservoirSampler
from ..streams.generators import clustered_points
from .config import ExperimentConfig
from .metrics import summarize
from .runner import monte_carlo
from .tables import ExperimentResult


def run_clustering(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E11: k-means cost of clustering the sample vs clustering everything."""
    config = config or ExperimentConfig()
    n = config.stream_length
    side = int(config.extra("grid_side", 256))
    clusters = int(config.extra("clusters", 5))
    sample_sizes = tuple(config.extra("sample_sizes", (50, 200, 500)))

    result = ExperimentResult(
        experiment_id="E11",
        title="Clustering on a reservoir sample vs the full stream",
        parameters={
            "stream_length": n,
            "grid_side": side,
            "clusters": clusters,
            "trials": config.trials,
        },
    )

    for order in ("shuffled", "sorted-by-cluster"):
        for sample_size in sample_sizes:
            def trial(rng: np.random.Generator, _index: int) -> float:
                points = clustered_points(
                    n, side, 2, clusters=clusters, spread=0.03, seed=rng
                )
                if order == "sorted-by-cluster":
                    # Group points by their nearest planted-cluster behaviour
                    # simply by sorting on coordinates, which clumps clusters
                    # together in stream order.
                    points = sorted(points)
                sampler = ReservoirSampler(sample_size, seed=rng)
                sampler.extend(points, updates=False)
                comparison = compare_sample_clustering(
                    points, list(sampler.sample), num_clusters=clusters, seed=rng
                )
                return comparison.cost_ratio

            ratios = monte_carlo(trial, config.trials, seed=config.seed)
            stats = summarize(ratios)
            result.add_row(
                stream_order=order,
                sample_size=sample_size,
                mean_cost_ratio=stats.mean,
                max_cost_ratio=stats.maximum,
            )
    result.note(
        "cost ratio = (stream cost of centers fit on the sample) / "
        "(stream cost of centers fit on the full stream); 1.0 means nothing lost"
    )
    return result
