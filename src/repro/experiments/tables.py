"""Plain-text result tables.

Each experiment returns an :class:`ExperimentResult` containing tabular rows;
the table renderer produces aligned plain text (for the CLI and for the
benchmark logs), Markdown (for EXPERIMENTS.md) and CSV (for further analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from ..exceptions import ConfigurationError


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


@dataclass
class Table:
    """A simple column-oriented table with alignment-aware text rendering."""

    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    title: str = ""

    def add_row(self, row: Mapping[str, Any] | Sequence[Any]) -> None:
        """Append a row given either a mapping over column names or a sequence."""
        if isinstance(row, Mapping):
            values = [row.get(column, "") for column in self.columns]
        else:
            values = list(row)
            if len(values) != len(self.columns):
                raise ConfigurationError(
                    f"row has {len(values)} values but the table has {len(self.columns)} columns"
                )
        self.rows.append(values)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Aligned plain-text rendering."""
        headers = [str(column) for column in self.columns]
        formatted_rows = [[_format_value(value) for value in row] for row in self.rows]
        widths = [len(header) for header in headers]
        for row in formatted_rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for row in formatted_rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown rendering."""
        headers = [str(column) for column in self.columns]
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join(["---"] * len(headers)) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_format_value(value) for value in row) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Comma-separated rendering (values containing commas are quoted)."""

        def _quote(text: str) -> str:
            if "," in text or '"' in text:
                return '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(_quote(str(column)) for column in self.columns)]
        for row in self.rows:
            lines.append(",".join(_quote(_format_value(value)) for value in row))
        return "\n".join(lines)

    def column(self, name: str) -> list[Any]:
        """Extract one column's values (raw, unformatted)."""
        if name not in self.columns:
            raise ConfigurationError(f"no column named {name!r}")
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class ExperimentResult:
    """The structured outcome of running one experiment.

    Attributes
    ----------
    experiment_id:
        Identifier from DESIGN.md (``"E1"`` ... ``"E14"``).
    title:
        Human-readable title (references the paper object being reproduced).
    parameters:
        The parameters the experiment actually ran with.
    rows:
        One dict per configuration row (the table's content).
    notes:
        Free-form observations recorded while running (attack failures,
        inexact discrepancy evaluations, clamped universe sizes, ...).
    """

    experiment_id: str
    title: str
    parameters: dict[str, Any]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append one result row."""
        self.rows.append(values)

    def note(self, message: str) -> None:
        """Record a free-form observation."""
        self.notes.append(message)

    def table(self, columns: Iterable[str] | None = None) -> Table:
        """Render the rows as a :class:`Table` (columns default to the union of keys)."""
        if columns is None:
            seen: list[str] = []
            for row in self.rows:
                for key in row:
                    if key not in seen:
                        seen.append(key)
            columns = seen
        table = Table(columns=list(columns), title=f"{self.experiment_id}: {self.title}")
        for row in self.rows:
            table.add_row(row)
        return table

    def to_text(self) -> str:
        """Full plain-text report: parameters, table, notes."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.parameters:
            lines.append(
                "parameters: "
                + ", ".join(f"{key}={value}" for key, value in self.parameters.items())
            )
        lines.append(self.table().to_text())
        if self.notes:
            lines.append("notes:")
            lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)
