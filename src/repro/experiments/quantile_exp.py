"""E7 — robust quantile sketches (Corollary 1.5).

The experiment feeds adversarial and static streams to
:class:`repro.applications.quantiles.RobustQuantileSketch` instances at the
corollary's sample size and at deliberately undersized fractions of it, and
measures the worst rank error across a grid of quantiles.  The reproduced
shape: at the corollary's size the worst quantile error stays below
``epsilon`` for every adversary; undersized sketches get visibly hurt by the
median attack while often still looking fine on static streams.
"""

from __future__ import annotations

import numpy as np

from ..adversary import MedianAttackAdversary, UniformAdversary, run_adaptive_game
from ..applications.quantiles import worst_quantile_error
from ..core.bounds import reservoir_adaptive_size
from ..samplers import BernoulliSampler, ReservoirSampler
from ..setsystems import PrefixSystem
from .config import ExperimentConfig
from .metrics import exceedance_rate, summarize
from .runner import monte_carlo
from .tables import ExperimentResult

#: The quantile grid at which rank errors are measured (the guarantee is
#: simultaneous over all of them).
QUANTILE_GRID = (0.1, 0.25, 0.5, 0.75, 0.9)


def run_quantile_robustness(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E7: worst quantile rank error under attack vs Corollary 1.5's sample size."""
    config = config or ExperimentConfig()
    n = config.stream_length
    universe_size = int(config.extra("quantile_universe_size", 2**20))
    system = PrefixSystem(universe_size)
    corollary_size = reservoir_adaptive_size(
        system.log_cardinality(), config.epsilon, config.delta
    ).size

    result = ExperimentResult(
        experiment_id="E7",
        title="Corollary 1.5 — robust quantile sketches",
        parameters={
            "epsilon": config.epsilon,
            "delta": config.delta,
            "stream_length": n,
            "universe_size": universe_size,
            "corollary_sample_size": corollary_size,
            "trials": config.trials,
        },
    )

    multipliers = tuple(config.extra("multipliers", (0.1, 0.5, 1.0)))
    mechanisms = ("reservoir", "bernoulli")
    adversaries = ("median-attack", "static-uniform")
    for mechanism in mechanisms:
        for multiplier in multipliers:
            size = max(2, int(round(corollary_size * multiplier)))
            for adversary_kind in adversaries:
                def trial(rng: np.random.Generator, _index: int) -> float:
                    if mechanism == "reservoir":
                        sampler = ReservoirSampler(size, seed=rng)
                    else:
                        sampler = BernoulliSampler(min(1.0, size / n), seed=rng)
                    if adversary_kind == "median-attack":
                        adversary = MedianAttackAdversary(n, universe_size=universe_size)
                    else:
                        adversary = UniformAdversary(universe_size, seed=rng)
                    outcome = run_adaptive_game(
                        sampler, adversary, n, set_system=None, keep_updates=False
                    )
                    if len(outcome.sample) == 0:
                        return 1.0
                    return worst_quantile_error(
                        outcome.stream, list(outcome.sample), QUANTILE_GRID
                    )

                errors = monte_carlo(trial, config.trials, seed=config.seed)
                stats = summarize(errors)
                result.add_row(
                    mechanism=mechanism,
                    size_multiplier=multiplier,
                    sample_size=size,
                    adversary=adversary_kind,
                    mean_worst_quantile_error=stats.mean,
                    max_worst_quantile_error=stats.maximum,
                    failure_rate=exceedance_rate(errors, config.epsilon),
                )
    result.note(
        "worst quantile error is the maximum rank error over the quantile grid "
        f"{QUANTILE_GRID}; Corollary 1.5 bounds it by epsilon at multiplier 1.0"
    )
    return result
