"""E8 — heavy hitters in the adversarial model (Corollary 1.6).

Two workloads stress the sample-and-count heavy hitter detector:

* a static Zipf-like stream with planted heavy elements (ground truth known),
* the adaptive :class:`SwitchingSingletonAdversary`, which piles stream mass
  on values the sampler failed to store (aiming for false negatives).

The detector sized per Corollary 1.6 should satisfy its promise (report every
``alpha``-heavy element, never report an ``alpha - epsilon``-light one) in
both regimes; an undersized detector should start violating the promise under
the adaptive attack.  The deterministic Misra–Gries summary is run alongside
as the always-correct baseline.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..adversary import SwitchingSingletonAdversary, run_adaptive_game
from ..applications.heavy_hitters import (
    SampleHeavyHitters,
    evaluate_heavy_hitters,
)
from ..samplers import MisraGriesSummary, ReservoirSampler
from ..streams.generators import planted_heavy_hitter_stream
from .config import ExperimentConfig
from .metrics import summarize
from .runner import monte_carlo
from .tables import ExperimentResult


def run_heavy_hitters(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E8: correctness of sample-based heavy hitters, static and adaptive."""
    config = config or ExperimentConfig()
    n = config.stream_length
    universe_size = int(config.extra("hh_universe_size", 10_000))
    alpha = float(config.extra("alpha", 0.4))
    epsilon = float(config.extra("hh_epsilon", 0.3))
    heavy_values = tuple(config.extra("heavy_values", (7, 42)))

    result = ExperimentResult(
        experiment_id="E8",
        title="Corollary 1.6 — heavy hitters under adaptive streams",
        parameters={
            "alpha": alpha,
            "epsilon": epsilon,
            "delta": config.delta,
            "stream_length": n,
            "universe_size": universe_size,
            "trials": config.trials,
        },
    )

    def _build_detector(rng: np.random.Generator, undersized: bool) -> SampleHeavyHitters:
        detector = SampleHeavyHitters(
            universe_size=universe_size,
            alpha=alpha,
            epsilon=epsilon,
            delta=config.delta,
            mechanism="reservoir",
            seed=rng,
        )
        if undersized:
            # Replace the internal reservoir with one an order of magnitude
            # smaller to show where the guarantee starts to crack.
            small = max(2, detector.sample_size_bound.size // 10)
            detector._sampler = ReservoirSampler(small, seed=rng)
        return detector

    configurations = (
        ("corollary-size", False, "static-planted"),
        ("corollary-size", False, "adaptive-switching"),
        ("undersized", True, "adaptive-switching"),
    )
    for label, undersized, workload in configurations:
        def trial(rng: np.random.Generator, _index: int) -> dict:
            detector = _build_detector(rng, undersized)
            if workload == "static-planted":
                stream = planted_heavy_hitter_stream(
                    n, universe_size, heavy_values, heavy_fraction=alpha + 0.05, seed=rng
                )
                detector.extend(stream)
            else:
                adversary = SwitchingSingletonAdversary(universe_size, revisit_evicted=True)
                outcome = run_adaptive_game(
                    detector.sampler, adversary, n, keep_updates=False
                )
                detector._count = n
                stream = outcome.stream
            evaluation = evaluate_heavy_hitters(
                detector.report(), stream, alpha=alpha, epsilon=epsilon
            )
            heaviest_density = max(Counter(stream).values()) / len(stream)
            return {
                "correct": evaluation.correct,
                "missed": len(evaluation.missed_heavy),
                "spurious": len(evaluation.spurious_light),
                "heaviest_density": heaviest_density,
                "sample_size": detector.sampler.sample_size,
            }

        outcomes = monte_carlo(trial, config.trials, seed=config.seed)
        result.add_row(
            detector=label,
            workload=workload,
            promise_violation_rate=sum(1 for o in outcomes if not o["correct"])
            / len(outcomes),
            mean_missed_heavy=summarize([float(o["missed"]) for o in outcomes]).mean,
            mean_spurious_light=summarize([float(o["spurious"]) for o in outcomes]).mean,
            mean_heaviest_stream_density=summarize(
                [o["heaviest_density"] for o in outcomes]
            ).mean,
            mean_sample_size=summarize([float(o["sample_size"]) for o in outcomes]).mean,
        )

    # Deterministic baseline: Misra–Gries is always correct, at the cost of
    # examining (and counting) every element.
    def misra_gries_trial(rng: np.random.Generator, _index: int) -> dict:
        summary = MisraGriesSummary(capacity=max(4, int(2 / epsilon)))
        adversary = SwitchingSingletonAdversary(universe_size, revisit_evicted=True)
        # Feed the adversarial stream generated against a reservoir sampler of
        # the corollary size (the attack needs *something* to observe).
        shadow = _build_detector(rng, undersized=False)
        outcome = run_adaptive_game(shadow.sampler, adversary, n, keep_updates=False)
        summary.extend(outcome.stream)
        evaluation = evaluate_heavy_hitters(
            set(summary.heavy_hitters(alpha)), outcome.stream, alpha=alpha, epsilon=epsilon
        )
        return {"correct": evaluation.correct, "memory": summary.memory_footprint()}

    outcomes = monte_carlo(misra_gries_trial, config.trials, seed=config.seed)
    result.add_row(
        detector="misra-gries",
        workload="adaptive-switching",
        promise_violation_rate=sum(1 for o in outcomes if not o["correct"]) / len(outcomes),
        mean_missed_heavy=0.0,
        mean_spurious_light=0.0,
        mean_heaviest_stream_density=float("nan"),
        mean_sample_size=summarize([float(o["memory"]) for o in outcomes]).mean,
    )
    result.note(
        "the switching attack's best uncaught value reaches stream density of only "
        "~1/(p n); with the corollary-sized sample this stays far below alpha, so "
        "no false negatives arise — matching Corollary 1.6"
    )
    return result
