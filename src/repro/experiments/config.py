"""Shared configuration objects for the experiment harness.

Every experiment accepts an :class:`ExperimentConfig`, whose defaults are
sized so that the full suite completes in minutes on a laptop; the benchmark
harness further shrinks ``trials`` so that each pytest-benchmark round stays
in the sub-second-to-seconds range.  Any field can be overridden per
experiment via :meth:`ExperimentConfig.replace`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by (almost) every experiment.

    Attributes
    ----------
    trials:
        Number of independent Monte-Carlo repetitions per configuration row.
    seed:
        Master seed; every trial derives an independent generator from it.
    epsilon:
        Target approximation error.
    delta:
        Target failure probability.
    stream_length:
        Stream length ``n``.
    universe_size:
        Size of the ordered universe for prefix/singleton experiments.
    extras:
        Free-form per-experiment parameters (grid sides, thresholds, ...).
    """

    trials: int = 10
    seed: int = 20200614
    epsilon: float = 0.25
    delta: float = 0.1
    stream_length: int = 2000
    universe_size: int = 1024
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {self.trials}")
        if not 0.0 < self.epsilon < 1.0:
            raise ConfigurationError(f"epsilon must lie in (0, 1), got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ConfigurationError(f"delta must lie in (0, 1), got {self.delta}")
        if self.stream_length < 2:
            raise ConfigurationError(
                f"stream length must be >= 2, got {self.stream_length}"
            )
        if self.universe_size < 2:
            raise ConfigurationError(
                f"universe size must be >= 2, got {self.universe_size}"
            )

    def replace(self, **changes: Any) -> "ExperimentConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def extra(self, key: str, default: Any = None) -> Any:
        """Read a per-experiment extra parameter."""
        return self.extras.get(key, default)

    def describe(self) -> dict[str, Any]:
        """Serialisable description used in experiment headers."""
        description = dataclasses.asdict(self)
        return description


#: Configuration used when experiments are invoked from the benchmark suite:
#: one to a few trials per row so each benchmark iteration stays fast while
#: still exercising every code path end to end.
BENCHMARK_CONFIG = ExperimentConfig(trials=2, stream_length=1200)

#: Configuration used for the full reported runs in EXPERIMENTS.md.
REPORT_CONFIG = ExperimentConfig(trials=30, stream_length=4000)
