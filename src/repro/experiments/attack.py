"""E3 / E4 — the lower-bound attacks (Theorem 1.3, Figure 3, and the intro attack).

E3 plays the Figure-3 attack over the theorem's huge discrete universe
(``N ~ n^{6 ln n}``, represented exactly with Python integers) against both
samplers, sweeping the sample size across the theorem's threshold.  The
reproduced shape is a sharp transition: far below the threshold the sample's
worst prefix error approaches ``1 - |S|/n`` (the sample is exactly the
smallest elements of the stream), and as the sample grows past
``~ n / ln n`` elements the attack loses its bite.

E4 plays the introduction's bisection attack over the continuous universe
``[0, 1]`` and verifies its headline property — with probability 1 the sample
equals the ``|S|`` smallest stream elements — as well as the paper's remark
that the attack needs precision exponential in the stream length (the round
at which IEEE doubles run out is recorded).
"""

from __future__ import annotations

import math

import numpy as np

from ..adversary import (
    BisectionAdversary,
    ThresholdAttackAdversary,
    recommended_universe_size,
    run_adaptive_game,
)
from ..core.bounds import (
    bernoulli_attack_threshold,
    reservoir_attack_threshold,
)
from ..samplers import BernoulliSampler, ReservoirSampler
from ..setsystems import ContinuousPrefixSystem, PrefixSystem
from .config import ExperimentConfig
from .metrics import exceedance_rate, summarize
from .runner import monte_carlo
from .tables import ExperimentResult


def run_attack_lower_bound(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E3: Theorem 1.3 — the Figure-3 attack defeats undersized samplers."""
    config = config or ExperimentConfig()
    n = config.stream_length
    universe_size = config.extra("attack_universe_size") or recommended_universe_size(n)
    system = PrefixSystem(universe_size)
    log_cardinality = system.log_cardinality()

    result = ExperimentResult(
        experiment_id="E3",
        title="Theorem 1.3 / Figure 3 — attack on undersized samples",
        parameters={
            "stream_length": n,
            "log_universe": round(log_cardinality, 2),
            "epsilon": config.epsilon,
            "trials": config.trials,
        },
    )
    reservoir_threshold = reservoir_attack_threshold(log_cardinality, n)
    bernoulli_threshold = bernoulli_attack_threshold(log_cardinality, n)
    result.note(
        f"Theorem 1.3 thresholds: reservoir k < {reservoir_threshold:.1f}, "
        f"Bernoulli p < {bernoulli_threshold:.2e}"
    )

    # --- Reservoir sweep: sizes spanning the threshold up to ~n/ln n and beyond.
    reservoir_sizes = config.extra(
        "reservoir_sizes",
        tuple(
            sorted(
                {
                    max(1, int(reservoir_threshold * factor))
                    for factor in (0.5, 1.0, 4.0, 16.0)
                }
                | {max(2, int(n / math.log(n))), max(2, int(0.5 * n))}
            )
        ),
    )
    for size in reservoir_sizes:
        def reservoir_trial(rng: np.random.Generator, _index: int) -> tuple[float, int]:
            sampler = ReservoirSampler(int(size), seed=rng)
            adversary = ThresholdAttackAdversary.for_reservoir(
                int(size), n, universe_size=universe_size
            )
            outcome = run_adaptive_game(
                sampler, adversary, n, set_system=system, epsilon=config.epsilon,
                keep_updates=False,
            )
            assert outcome.error is not None
            return outcome.error, sampler.total_accepted

        outcomes = monte_carlo(reservoir_trial, config.trials, seed=config.seed)
        errors = [error for error, _accepted in outcomes]
        accepted = [float(count) for _error, count in outcomes]
        result.add_row(
            mechanism="reservoir",
            sample_parameter=int(size),
            below_threshold=size < reservoir_threshold,
            mean_error=summarize(errors).mean,
            max_error=summarize(errors).maximum,
            attack_success_rate=exceedance_rate(errors, config.epsilon),
            mean_total_accepted=summarize(accepted).mean,
        )

    # --- Bernoulli sweep: rates spanning the threshold.
    bernoulli_rates = config.extra(
        "bernoulli_rates",
        tuple(
            sorted(
                {
                    min(0.9, bernoulli_threshold * factor)
                    for factor in (0.5, 1.0, 10.0)
                }
                | {min(0.9, 1.0 / math.log(n)), 0.5}
            )
        ),
    )
    for rate in bernoulli_rates:
        def bernoulli_trial(rng: np.random.Generator, _index: int) -> float:
            sampler = BernoulliSampler(float(rate), seed=rng)
            adversary = ThresholdAttackAdversary.for_bernoulli(
                float(rate), n, universe_size=universe_size
            )
            outcome = run_adaptive_game(
                sampler, adversary, n, set_system=system, epsilon=config.epsilon,
                keep_updates=False,
            )
            assert outcome.error is not None
            return outcome.error

        errors = monte_carlo(bernoulli_trial, config.trials, seed=config.seed)
        result.add_row(
            mechanism="bernoulli",
            sample_parameter=round(float(rate), 6),
            below_threshold=rate < bernoulli_threshold,
            mean_error=summarize(errors).mean,
            max_error=summarize(errors).maximum,
            attack_success_rate=exceedance_rate(errors, config.epsilon),
            mean_total_accepted=float("nan"),
        )
    return result


def run_bisection_attack(config: ExperimentConfig | None = None) -> ExperimentResult:
    """E4: the introduction's bisection attack on the continuous universe [0, 1]."""
    config = config or ExperimentConfig()
    n = config.stream_length
    system = ContinuousPrefixSystem(0.0, 1.0)
    probabilities = tuple(config.extra("probabilities", (0.05, 0.2, 0.5)))
    result = ExperimentResult(
        experiment_id="E4",
        title="Introduction attack — bisection on [0, 1]",
        parameters={"stream_length": n, "trials": config.trials},
    )

    for probability in probabilities:
        def bernoulli_trial(rng: np.random.Generator, _index: int) -> dict:
            sampler = BernoulliSampler(probability, seed=rng)
            adversary = BisectionAdversary()
            outcome = run_adaptive_game(
                sampler, adversary, n, set_system=system, keep_updates=False
            )
            stream_sorted = sorted(outcome.stream)
            sample_sorted = sorted(outcome.sample)
            sample_is_smallest = sample_sorted == stream_sorted[: len(sample_sorted)]
            return {
                "error": outcome.error if outcome.error is not None else 1.0,
                "sample_is_smallest": sample_is_smallest,
                "precision_exhausted_at": adversary.precision_exhausted_at or 0,
                "sample_size": len(outcome.sample),
            }

        outcomes = monte_carlo(bernoulli_trial, config.trials, seed=config.seed)
        errors = [outcome["error"] for outcome in outcomes]
        result.add_row(
            sampler="bernoulli",
            probability=probability,
            mean_error=summarize(errors).mean,
            min_error=summarize(errors).minimum,
            sample_equals_smallest_rate=sum(
                1 for o in outcomes if o["sample_is_smallest"]
            )
            / len(outcomes),
            mean_precision_exhaustion_round=summarize(
                [float(o["precision_exhausted_at"]) for o in outcomes]
            ).mean,
            mean_sample_size=summarize(
                [float(o["sample_size"]) for o in outcomes]
            ).mean,
        )

    # Reservoir variant: the sampled elements end up among the first
    # O(k ln n) elements of the stream with high probability (Section 5).
    reservoir_sizes = tuple(config.extra("reservoir_sizes_bisection", (10, 40)))
    for size in reservoir_sizes:
        def reservoir_trial(rng: np.random.Generator, _index: int) -> dict:
            sampler = ReservoirSampler(size, seed=rng)
            adversary = BisectionAdversary()
            outcome = run_adaptive_game(
                sampler, adversary, n, set_system=system, keep_updates=False
            )
            # Rank (1-based, within the sorted stream) of the largest sampled element.
            stream_sorted = sorted(outcome.stream)
            largest_sample = max(outcome.sample)
            worst_rank = sum(1 for value in stream_sorted if value <= largest_sample)
            return {
                "error": outcome.error if outcome.error is not None else 1.0,
                "worst_rank": worst_rank,
                "total_accepted": sampler.total_accepted,
            }

        outcomes = monte_carlo(reservoir_trial, config.trials, seed=config.seed)
        errors = [outcome["error"] for outcome in outcomes]
        predicted_accepted = 4 * size * math.log(n)
        result.add_row(
            sampler="reservoir",
            probability=float(size),
            mean_error=summarize(errors).mean,
            min_error=summarize(errors).minimum,
            sample_equals_smallest_rate=float("nan"),
            mean_precision_exhaustion_round=float("nan"),
            mean_sample_size=float(size),
        )
        mean_accepted = summarize([float(o["total_accepted"]) for o in outcomes]).mean
        result.note(
            f"reservoir k={size}: mean number of ever-accepted elements "
            f"k' = {mean_accepted:.0f} (paper's Section 5 bound: "
            f"k' <= 4 k ln n = {predicted_accepted:.0f} with high probability); "
            "beyond the float-precision limit (~55 rounds) the [0,1] attack stalls, "
            "so the exact-arithmetic Figure-3 attack (E3) is the one that realises "
            "the full 'sample = smallest elements' behaviour against reservoirs"
        )
    return result
