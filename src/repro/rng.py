"""Random-number-generation helpers shared across the library.

The paper's adversarial model gives the adversary full knowledge of the
sampler's *state* but not of its future coin flips, so reproducibility of
experiments hinges on carefully separated random streams: the sampler, the
adversary and the workload generator each receive independent generators
derived from a single experiment seed.  This module centralises that logic.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

RandomState = int | np.random.Generator | None

#: Default bit generator used throughout the library.
_DEFAULT_BIT_GENERATOR = np.random.PCG64


def ensure_generator(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged).  This is the single conversion point used
    by every randomised component in the library, so seeding behaviour is
    uniform everywhere.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.Generator(_DEFAULT_BIT_GENERATOR(seed))


def spawn_generators(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Independence is obtained through :class:`numpy.random.SeedSequence`
    spawning, which is the recommended way to parallelise PCG64 streams.
    When ``seed`` is already a generator its bit generator's seed sequence is
    spawned, so repeated calls keep producing fresh streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seed_seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        children = seed_seq.spawn(count)
    else:
        children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.Generator(_DEFAULT_BIT_GENERATOR(child)) for child in children]


def collapse_seed(seed: RandomState) -> int:
    """Collapse any accepted seed form into one master integer.

    Used wherever a plain integer must stand in for the seed — substream
    derivation below, and the batch engine, whose master integer (not a live
    generator) crosses process boundaries.  Integer seeds below ``2^128`` are
    preserved exactly: a 32-bit mask would collapse distinct master seeds
    (e.g. ``2^32`` and ``0``) onto identical streams.  ``None`` draws fresh
    entropy; a generator is consumed for one 32-bit draw.
    """
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**32))
    if seed is None:
        return int(np.random.SeedSequence().entropy % (2**32))
    return int(seed) & ((1 << 128) - 1)


def derive_substream(seed: RandomState, *labels: int | str) -> np.random.Generator:
    """Return a generator deterministically derived from ``seed`` and ``labels``.

    Useful when an experiment needs a reproducible stream per (trial, role)
    pair: ``derive_substream(seed, trial_index, "adversary")``.  String labels
    are folded into integers via a stable hash so the derivation does not
    depend on Python's per-process hash randomisation.
    """
    keys: list[int] = []
    for label in labels:
        if isinstance(label, int):
            keys.append(label & 0xFFFFFFFF)
        else:
            keys.append(_stable_string_key(str(label)))
    seq = np.random.SeedSequence([collapse_seed(seed), *keys])
    return np.random.Generator(_DEFAULT_BIT_GENERATOR(seq))


def _stable_string_key(label: str) -> int:
    """Fold a string into a 32-bit integer with a process-independent hash."""
    value = 2166136261
    for char in label.encode("utf-8"):
        value ^= char
        value = (value * 16777619) & 0xFFFFFFFF
    return value


def hypergeometric_split(
    rng: np.random.Generator,
    counts: Sequence[int],
    size: int,
    available: Sequence[int] | None = None,
) -> list[int]:
    """Draw a multivariate-hypergeometric allocation of ``size`` slots.

    Part ``i`` summarises ``counts[i]`` stream elements; the returned
    allocation says how many of the ``size`` output slots each part
    contributes, distributed exactly as a uniform ``size``-subset of the
    union of all substreams would be — the merge rule of [CTW16]-style
    coordinator sampling, shared by :class:`~repro.distributed.coordinator.
    DistributedReservoir` and :meth:`~repro.samplers.reservoir.
    ReservoirSampler.merge`.

    ``available`` caps how many elements part ``i`` can actually supply
    (its locally stored sample).  Slack caused by the cap is redistributed
    greedily to parts with spare stored elements, as the coordinator always
    did.  The draw sequence (one conditional ``hypergeometric`` per part)
    is kept identical to the historical coordinator implementation so
    seeded merges reproduce across releases.
    """
    counts = [int(count) for count in counts]
    if available is None:
        available = counts
    remaining_size = int(size)
    remaining_total = sum(counts)
    allocation: list[int] = []
    for part, count in enumerate(counts):
        if remaining_size == 0 or remaining_total == 0:
            allocation.append(0)
            continue
        other = remaining_total - count
        draw = int(
            rng.hypergeometric(
                ngood=count, nbad=max(other, 0), nsample=remaining_size
            )
        ) if other >= 0 and remaining_size <= remaining_total else remaining_size
        draw = min(draw, count, int(available[part]), remaining_size)
        allocation.append(draw)
        remaining_size -= draw
        remaining_total -= count
    # Any slack (caused by capping at the locally available sample) is
    # redistributed greedily to parts with spare stored elements.
    part = 0
    while remaining_size > 0 and part < len(counts):
        spare = int(available[part]) - allocation[part]
        grant = min(spare, remaining_size)
        if grant > 0:
            allocation[part] += grant
            remaining_size -= grant
        part += 1
    return allocation


def bernoulli_trial(rng: np.random.Generator, probability: float) -> bool:
    """Return ``True`` with the given probability using ``rng``."""
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    return bool(rng.random() < probability)


def sample_without_replacement(
    rng: np.random.Generator, population: Iterable[Any], size: int
) -> list[Any]:
    """Uniformly sample ``size`` distinct items from ``population``."""
    items = list(population)
    if size > len(items):
        raise ValueError(
            f"cannot sample {size} items from a population of {len(items)}"
        )
    indices = rng.choice(len(items), size=size, replace=False)
    return [items[int(i)] for i in indices]
