"""Composable robust-defense wrappers around any :class:`StreamSampler`.

The paper (Section 1.3) leaves open how to *defend* a sampler beyond
Theorem 1.2's oversampling; the follow-up literature supplies generic
recipes, all of the same shape — run several independent copies of the
sampler and control what the adversary gets to observe:

* **Sketch switching** ([BJWY20]): serve queries from one *active* copy and
  advance to a fresh copy once the active one has been exposed to the
  adversary, with a flip-number-style budget on the number of switches.
  Whatever the adversary learned about the realised randomness of the old
  copy is useless against the new one.
* **DP aggregation** ([HKMMS20]): never expose any single copy
  consistently — serve each observation from a pseudo-randomly selected
  copy, and answer scalar estimate queries (densities, quantiles,
  heavy-hitter counts) with a noised median over all copies, so no
  observation pins down one copy's coin flips.
* **Difference estimators** ([WZ21]), specialised here to the
  sliding-window deployments: rotate the serving copy on the window's own
  turnover schedule.  By the time a copy serves again, everything the
  adversary learned about it has expired out of its window, which is what
  lets a *finite* set of copies be recycled indefinitely.

All three are ordinary :class:`~repro.samplers.base.StreamSampler`\\ s, so
they drop into every existing scenario, game runner and sharded deployment
unchanged.  Ingestion feeds **every** copy (one vectorised ``extend`` kernel
call per copy per segment, preserving the chunked fast paths), and
:class:`~repro.samplers.base.Mergeable` is implemented copy-wise, so a
:class:`~repro.distributed.sharded.ShardedSampler` over defended sites
merges defended coordinator views transparently.

Space accounting: a wrapper with ``R`` copies of a capacity-``k`` sampler
stores ``R * k`` elements (reported by :meth:`memory_footprint`).  The
scenario layer's ``matched_space`` knob divides the per-copy capacity by
``R`` so defended and undefended configurations compare at equal total
space (see :func:`repro.scenarios.builders.build_defended_sampler`).

Determinism: the serving-copy selection never consumes generator state at
read time — sketch switching switches on the (path-independent) sequence of
exposures, DP aggregation selects by a stable hash of the round count, and
the difference estimator rotates on a fixed ingest schedule — so repeated
reads of the same state are idempotent and chunked execution serves exactly
what per-element execution serves.
"""

from __future__ import annotations

import copy as copy_module
import math
from collections.abc import Callable, Iterable, Sequence
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RandomState, derive_substream, ensure_generator, spawn_generators
from ..samplers.base import SampleUpdate, StreamSampler, UpdateBatch

__all__ = [
    "DPAggregateSampler",
    "DifferenceEstimatorSampler",
    "ReplicatedDefenseSampler",
    "SketchSwitchingSampler",
]

#: Knuth multiplicative constant used for the stable round -> copy hash.
_KNUTH = np.uint64(2654435761)


class ReplicatedDefenseSampler(StreamSampler):
    """Common machinery of the copy-replication defenses.

    Parameters
    ----------
    copy_factory:
        Callable ``(rng) -> StreamSampler`` constructing one copy; called
        ``copies`` times with independent generators derived from ``seed``
        (the same ``(seed, role)`` substream discipline the rest of the
        library uses).
    copies:
        Number of independent copies ``R`` (>= 2 — one copy is no defense).
    seed:
        Single source of randomness for the copies and any defense-internal
        draws (DP noise seeding); ``copies + 1`` substreams are derived.

    Every copy ingests every element; subclasses only decide which copy
    *serves* each observation (:meth:`_serving_indices`).  Update records —
    the adversary's feedback under the ``updates`` knowledge model — are the
    serving copy's records for each round, so the adversary observes exactly
    the copy it could also query, never the hidden ones.
    """

    defense_kind = "replicated"

    def __init__(
        self,
        copy_factory: Callable[[np.random.Generator], StreamSampler],
        copies: int = 4,
        seed: RandomState = None,
    ) -> None:
        super().__init__()
        if copies < 2:
            raise ConfigurationError(
                f"a replication defense needs at least 2 copies, got {copies}"
            )
        self.copies = int(copies)
        rng = ensure_generator(seed)
        defense_rng, *copy_rngs = spawn_generators(rng, self.copies + 1)
        self._defense_rng = defense_rng
        self._copies: list[StreamSampler] = [copy_factory(r) for r in copy_rngs]
        for copy_ in self._copies:
            if not isinstance(copy_, StreamSampler):
                raise ConfigurationError(
                    f"copy factory produced {type(copy_).__name__}, not a StreamSampler"
                )
        self.name = f"{self.defense_kind}-{self.copies}x-{self._copies[0].name}"

    # ------------------------------------------------------------------
    # Serving policy (subclass responsibility)
    # ------------------------------------------------------------------
    def _serving_indices(self, round_indices: np.ndarray) -> np.ndarray:
        """Copy index serving each of the given 1-based rounds."""
        raise NotImplementedError

    def _serving_index(self) -> int:
        """Copy index serving a read of the *current* state."""
        if self._round == 0:
            return 0
        return int(
            self._serving_indices(np.array([self._round], dtype=np.int64))[0]
        )

    def observe_exposure(self) -> None:
        """Hook: the serving copy's state was just shown to an observer.

        :class:`~repro.distributed.sharded.ShardedSampler` calls this on its
        sites when the *merged* view is read, so exposure-driven defenses
        (sketch switching) see coordinator-level reads too.  The base
        implementation does nothing — DP aggregation and the difference
        estimator do not track exposure.
        """

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def _process(self, element: Any) -> SampleUpdate:
        serving = int(
            self._serving_indices(np.array([self._round], dtype=np.int64))[0]
        )
        result: SampleUpdate | None = None
        for index, copy_ in enumerate(self._copies):
            update = copy_.process(element)
            if index == serving:
                result = update
        assert result is not None
        return result

    def extend(
        self, elements: Iterable[Any], updates: bool = True
    ) -> UpdateBatch | None:
        """One vectorised kernel call per copy; serving-copy update records.

        Each copy ingests the whole segment through its own ``extend``
        kernel.  With ``updates=True`` the returned batch carries, row by
        row, the record of the copy serving that round — a constant copy for
        sketch switching (switches happen at reads, never mid-segment), a
        round-keyed selection for the rotating defenses — gathered columnar
        so the chunked runners never fall back to per-element records.
        """
        elements = list(elements)
        if not elements:
            return UpdateBatch.empty() if updates else None
        start_round = self._round
        self._round += len(elements)
        if not updates:
            for copy_ in self._copies:
                copy_.extend(elements, updates=False)
            return None
        round_indices = np.arange(
            start_round + 1, start_round + len(elements) + 1, dtype=np.int64
        )
        serving = self._serving_indices(round_indices)
        needed = {int(index) for index in np.unique(serving)}
        batches: dict[int, UpdateBatch] = {}
        for index, copy_ in enumerate(self._copies):
            batch = copy_.extend(elements, updates=index in needed)
            if index in needed:
                batches[index] = batch
        if len(needed) == 1:
            # Copies ingest every round, so their round indices are already
            # the wrapper's global ones; the single serving batch passes
            # straight through.
            return batches[next(iter(needed))]  # repro: noqa[DET003]: guarded by len(needed) == 1, so the pick is deterministic
        accepted = np.zeros(len(elements), dtype=bool)
        evictions: dict[int, Any] = {}
        for index, batch in batches.items():
            mask = serving == index
            accepted[mask] = batch.accepted[mask]
            for offset, evicted in batch.evictions.items():
                if serving[offset] == index:
                    evictions[offset] = evicted
        return UpdateBatch(round_indices, elements, accepted, evictions)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def sample(self) -> Sequence[Any]:
        """The serving copy's maintained sample."""
        return self._copies[self._serving_index()].sample

    def memory_footprint(self) -> int:
        """Elements held across all copies (the defense's true space cost)."""
        return sum(copy_.memory_footprint() for copy_ in self._copies)

    def reset(self) -> None:
        for copy_ in self._copies:
            copy_.reset()
        self._round = 0

    # ------------------------------------------------------------------
    # Mergeable (copy-wise delegation)
    # ------------------------------------------------------------------
    @property
    def merge_wants_offsets(self) -> bool:
        """Whether the inner family's merge takes substream offsets
        (sliding windows do); forwarded so sharded coordinators pass them."""
        return bool(getattr(self._copies[0], "merge_wants_offsets", False))

    def merge(
        self,
        others: Sequence["ReplicatedDefenseSampler"],
        *,
        rng: np.random.Generator | None = None,
        offsets: Sequence[int] | None = None,
    ) -> "ReplicatedDefenseSampler":
        """Merge defended shards copy-wise into one defended summary.

        Copy ``i`` of the result is the inner family's merge of copy ``i``
        of every part — the coordinator of a sharded defended deployment
        holds the same ``R`` independent merged copies a standalone defended
        sampler would, and the serving policy (carried over from ``self``,
        the primary part) applies to the merged state unchanged.  The parts
        are never mutated.
        """
        for other in others:
            if type(other) is not type(self) or other.copies != self.copies:
                raise ConfigurationError(
                    f"cannot merge {type(self).__name__}({self.copies} copies) "
                    f"with {type(other).__name__}"
                    f"({getattr(other, 'copies', '?')} copies)"
                )
        # Each copy's merge gets its *own* child generator.  Passing the one
        # shared ``rng`` object straight through would leave every merged
        # copy drawing from the same stream afterwards, interleaving their
        # post-merge ingestion coins in path-dependent order (chunked drains
        # copy 0 for a whole batch first; per-element alternates copies).
        copy_rngs: Sequence[np.random.Generator | None]
        if rng is None:
            copy_rngs = [None] * self.copies
        else:
            copy_rngs = spawn_generators(rng, self.copies)
        merged_copies = []
        for index in range(self.copies):
            primary = self._copies[index]
            parts = [other._copies[index] for other in others]
            if offsets is not None and getattr(primary, "merge_wants_offsets", False):
                merged_copies.append(
                    primary.merge(parts, rng=copy_rngs[index], offsets=offsets)
                )
            else:
                merged_copies.append(primary.merge(parts, rng=copy_rngs[index]))
        merged = copy_module.copy(self)
        merged._copies = merged_copies
        merged._round = self._round + sum(other._round for other in others)
        return merged

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def copy_samplers(self) -> Sequence[StreamSampler]:
        """The underlying copies (read-only view)."""
        return tuple(self._copies)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(copies={self.copies}, "
            f"rounds={self.rounds_processed})"
        )


class SketchSwitchingSampler(ReplicatedDefenseSampler):
    """Sketch switching [BJWY20]: serve one copy, retire it once exposed.

    The active copy serves every observation.  The first observation of
    fresh state marks the copy *exposed*; once the stream has grown by a
    factor of ``growth`` since that exposure, the next observation is served
    by the **next** copy instead — a flip-number-style schedule: over an
    ``n``-element stream at most ``log_growth(n)`` switches can fire, so a
    copy budget of ``R`` covers streams up to ``growth ** (R - 1)`` times
    the first exposure point.  When the budget is exhausted the last copy
    keeps serving (the defense degrades to an undefended sampler rather
    than failing).

    The switch rule reads only the exposure history and the round count —
    both identical across chunked and per-element execution and across
    attack budgets over a shared prefix — so the scenario layer's
    bit-reproducibility, chunking-independence and budget-monotonicity
    invariants all survive the wrapper.
    """

    defense_kind = "sketch_switching"

    def __init__(
        self,
        copy_factory: Callable[[np.random.Generator], StreamSampler],
        copies: int = 4,
        growth: float = 2.0,
        seed: RandomState = None,
    ) -> None:
        if growth <= 1.0:
            raise ConfigurationError(
                f"switch epoch growth must exceed 1, got {growth}"
            )
        super().__init__(copy_factory, copies=copies, seed=seed)
        self.growth = float(growth)
        self._active = 0
        #: Round count at which the active copy was first observed
        #: (``None`` while it is still unexposed).
        self._exposed_round: int | None = None

    def _maybe_switch(self) -> None:
        if self._exposed_round is None or self._active + 1 >= self.copies:
            return
        threshold = max(
            self._exposed_round + 1,
            int(math.ceil(self._exposed_round * self.growth)),
        )
        if self._round >= threshold:
            self._active += 1
            self._exposed_round = None

    def observe_exposure(self) -> None:
        self._maybe_switch()
        if self._exposed_round is None:
            self._exposed_round = self._round

    def _serving_indices(self, round_indices: np.ndarray) -> np.ndarray:
        return np.full(len(round_indices), self._active, dtype=np.int64)

    @property
    def sample(self) -> Sequence[Any]:
        """The active copy's sample; reading it counts as an exposure."""
        self.observe_exposure()
        return self._copies[self._active].sample

    @property
    def switches_used(self) -> int:
        """How many of the ``R - 1`` available switches have fired."""
        return self._active

    def reset(self) -> None:
        super().reset()
        self._active = 0
        self._exposed_round = None


class DPAggregateSampler(ReplicatedDefenseSampler):
    """DP-style aggregation over copies [HKMMS20].

    No single copy is ever exposed consistently: the copy serving a read of
    state after round ``r`` is selected by a stable hash of ``r`` (salted
    per instance), so consecutive observations hop between copies and an
    adaptive adversary cannot accumulate knowledge of any one copy's
    realised coin flips.  Selection is a pure function of the round count —
    idempotent reads, nothing drawn at query time — which keeps chunked and
    per-element execution, and repeated snapshots of one state, exactly
    identical.

    The scalar estimate paths add the [HKMMS20] aggregation proper:
    :meth:`private_density`, :meth:`private_quantile` and
    :meth:`private_count` answer with the **median** over the per-copy
    estimates plus Laplace noise of scale ``value_scale / (dp_epsilon * R)``
    (aggregating ``R`` independent estimates lets the noise shrink linearly
    in ``R`` for a fixed privacy budget).  Noise is drawn from a substream
    keyed by ``(instance salt, round, query label)``, so replaying a query
    against the same state returns the same answer — privacy against the
    adversary, reproducibility for the experiments.
    """

    defense_kind = "dp_aggregate"

    def __init__(
        self,
        copy_factory: Callable[[np.random.Generator], StreamSampler],
        copies: int = 4,
        dp_epsilon: float = 1.0,
        value_scale: float = 1.0,
        seed: RandomState = None,
    ) -> None:
        if dp_epsilon <= 0.0:
            raise ConfigurationError(
                f"dp_epsilon must be positive, got {dp_epsilon}"
            )
        if value_scale <= 0.0:
            raise ConfigurationError(
                f"value_scale must be positive, got {value_scale}"
            )
        super().__init__(copy_factory, copies=copies, seed=seed)
        self.dp_epsilon = float(dp_epsilon)
        self.value_scale = float(value_scale)
        # One construction-time draw; selection and noise derive from it
        # deterministically thereafter (nothing is consumed at query time).
        self._salt = int(self._defense_rng.integers(0, 2**32))

    def _serving_indices(self, round_indices: np.ndarray) -> np.ndarray:
        mixed = (round_indices.astype(np.uint64) * _KNUTH) ^ np.uint64(self._salt)
        return (mixed % np.uint64(self.copies)).astype(np.int64)

    # ------------------------------------------------------------------
    # Private scalar queries
    # ------------------------------------------------------------------
    def _noised_median(self, estimates: Sequence[float], label: str) -> float:
        noise_rng = derive_substream(self._salt, self._round, label)
        scale = self.value_scale / (self.dp_epsilon * self.copies)
        return float(np.median(estimates) + noise_rng.laplace(0.0, scale))

    def private_density(self, target: Any) -> float:
        """Noised median over per-copy sample densities of ``target``.

        ``target`` is anything supporting ``in`` (the set-system ranges).
        Empty copies estimate density 0.
        """
        estimates = []
        for copy_ in self._copies:
            sample = copy_.sample
            if len(sample) == 0:
                estimates.append(0.0)
            else:
                estimates.append(
                    sum(1 for element in sample if element in target) / len(sample)
                )
        return self._noised_median(estimates, "density")

    def private_quantile(self, fraction: float) -> float:
        """Noised median over per-copy empirical ``fraction``-quantiles."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(
                f"quantile fraction must lie in [0, 1], got {fraction}"
            )
        estimates = []
        for copy_ in self._copies:
            sample = sorted(copy_.sample)
            if not sample:
                estimates.append(0.0)
                continue
            index = min(len(sample) - 1, int(fraction * len(sample)))
            estimates.append(float(sample[index]))
        return self._noised_median(estimates, f"quantile:{fraction}")

    def private_count(self, element: Any) -> float:
        """Noised median over per-copy occurrence counts of ``element``
        (the heavy-hitter count estimate), floored at zero."""
        estimates = [
            float(sum(1 for stored in copy_.sample if stored == element))
            for copy_ in self._copies
        ]
        return max(0.0, self._noised_median(estimates, f"count:{element!r}"))


class DifferenceEstimatorSampler(ReplicatedDefenseSampler):
    """Window-rotation defense for sliding-window samplers, after [WZ21].

    Difference estimators exploit that a sliding window forgets: state the
    adversary learned about a copy is only dangerous while the elements it
    learned about are still live.  The wrapper therefore rotates the serving
    copy round-robin every ``rotation_period`` ingested rounds (one window
    turnover by default): by the time copy ``i`` serves again, ``R - 1``
    rotations — at least a full window — have elapsed, and everything the
    adversary observed of it has expired.  Unlike sketch switching the copy
    budget is never exhausted; the rotation recycles copies forever, which
    is exactly the [WZ21] observation that sliding windows need only
    O(1)-ish fresh randomness per window.

    The schedule is a pure function of the round count, so rotation commutes
    with chunking and with the attack budget (same arguments as
    :class:`DPAggregateSampler`).  The inner family must be a sliding-window
    sampler — validated at construction via the ``window`` attribute.
    """

    defense_kind = "difference_estimator"

    def __init__(
        self,
        copy_factory: Callable[[np.random.Generator], StreamSampler],
        copies: int = 4,
        rotation_period: int | None = None,
        seed: RandomState = None,
    ) -> None:
        super().__init__(copy_factory, copies=copies, seed=seed)
        window = getattr(self._copies[0], "window", None)
        if window is None:
            raise ConfigurationError(
                "the difference-estimator defense only applies to "
                "sliding-window samplers (the inner sampler declares no "
                f"window), got {type(self._copies[0]).__name__}"
            )
        if rotation_period is None:
            rotation_period = int(window)
        if rotation_period < 1:
            raise ConfigurationError(
                f"rotation period must be >= 1, got {rotation_period}"
            )
        self.rotation_period = int(rotation_period)

    def _serving_indices(self, round_indices: np.ndarray) -> np.ndarray:
        return ((round_indices - 1) // self.rotation_period) % self.copies
