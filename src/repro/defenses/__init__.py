"""Robust-defense wrappers for adversarial streams (ROADMAP item 1).

The attack side of the library (``repro.adversary``, ``repro.scenarios``)
realises the paper's negative results; this package holds the positive
ones — the generic robustification recipes from the follow-up literature,
packaged as composable :class:`~repro.samplers.base.StreamSampler` wrappers:

* :class:`SketchSwitchingSampler` — [BJWY20] sketch switching (serve one
  copy, retire it once exposed, flip-number switch budget);
* :class:`DPAggregateSampler` — [HKMMS20] aggregation (round-hashed copy
  selection plus noised-median scalar estimates);
* :class:`DifferenceEstimatorSampler` — [WZ21]-style copy rotation on the
  sliding-window turnover schedule.

The scenario layer exposes them through the ``defense`` block of
:class:`~repro.scenarios.config.ScenarioConfig`; see
``docs/architecture.md`` ("Defense layer").
"""

from .wrappers import (
    DPAggregateSampler,
    DifferenceEstimatorSampler,
    ReplicatedDefenseSampler,
    SketchSwitchingSampler,
)

__all__ = [
    "DPAggregateSampler",
    "DifferenceEstimatorSampler",
    "ReplicatedDefenseSampler",
    "SketchSwitchingSampler",
]
