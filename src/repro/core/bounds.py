"""Sample-size bounds from the paper, as callable calculators.

Three families of bounds are provided:

* **Adaptive upper bounds** (Theorem 1.2): the Bernoulli rate
  ``p >= 10 (ln|R| + ln(4/delta)) / (eps^2 n)`` and the reservoir size
  ``k >= 2 (ln|R| + ln(2/delta)) / eps^2`` that guarantee (eps, delta)-robustness
  against any adaptive adversary.
* **Static upper bounds** (classical VC theory, [VC71, Tal94, LLS01]): the same
  shapes with ``ln|R|`` replaced by the VC dimension ``d`` (up to a constant).
* **Attack thresholds** (Theorem 1.3): sample sizes *below*
  ``c ln|R| / ln n`` (reservoir) resp. rates below ``c ln|R| / (n ln n)``
  (Bernoulli) at which the Figure-3 attack provably defeats the sampler.
* **Continuous robustness bound** (Theorem 1.4) and, for comparison, the naive
  union-bound variant discussed in its proof.

All calculators return both the real-valued bound and the integer sample size
/ feasible probability actually used by experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ConfigurationError

#: Multiplicative constants taken verbatim from the statements in the paper.
BERNOULLI_ADAPTIVE_CONSTANT = 10.0
RESERVOIR_ADAPTIVE_CONSTANT = 2.0
#: Constant used for the static (VC) bounds.  The paper cites the classical
#: results with an unspecified constant ``c``; the value 4 reproduces the
#: standard eps-approximation bound with reasonable tightness in simulation.
STATIC_VC_CONSTANT = 4.0
#: Constant for the Theorem 1.4 continuous bound.  The theorem only asserts
#: that *some* constant works; the value 8 (four times the Theorem 1.2
#: constant, matching the eps/4 checkpoint argument) is what the continuous
#: experiments validate empirically.
CONTINUOUS_CONSTANT = 8.0
#: Constant for the Theorem 1.3 attack threshold (a sufficiently small ``c``).
ATTACK_THRESHOLD_CONSTANT = 1.0 / 6.0


def _validate(epsilon: float, delta: float) -> None:
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must lie in (0, 1), got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must lie in (0, 1), got {delta}")


@dataclass(frozen=True)
class SampleSizeBound:
    """A computed sample-size requirement.

    Attributes
    ----------
    value:
        The raw real-valued bound (expected sample size or reservoir size).
    probability:
        For Bernoulli bounds, the per-element sampling probability (capped at
        1); ``None`` for reservoir bounds.
    size:
        The integer sample size an experiment should use: ``ceil(value)`` for
        reservoir bounds, ``ceil(n * probability)`` for Bernoulli bounds.
    description:
        Human-readable provenance (theorem and regime).
    """

    value: float
    probability: float | None
    size: int
    description: str


# ----------------------------------------------------------------------
# Theorem 1.2 — adaptive upper bounds
# ----------------------------------------------------------------------
def bernoulli_adaptive_rate(
    log_cardinality: float, epsilon: float, delta: float, stream_length: int
) -> SampleSizeBound:
    """Bernoulli rate from Theorem 1.2: ``p >= 10 (ln|R| + ln(4/delta)) / (eps^2 n)``."""
    _validate(epsilon, delta)
    if stream_length < 1:
        raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
    raw = (
        BERNOULLI_ADAPTIVE_CONSTANT
        * (log_cardinality + math.log(4.0 / delta))
        / (epsilon**2 * stream_length)
    )
    probability = min(1.0, raw)
    return SampleSizeBound(
        value=raw * stream_length,
        probability=probability,
        size=math.ceil(probability * stream_length),
        description="Theorem 1.2 (BernoulliSample, adaptive adversary)",
    )


def reservoir_adaptive_size(
    log_cardinality: float, epsilon: float, delta: float
) -> SampleSizeBound:
    """Reservoir size from Theorem 1.2: ``k >= 2 (ln|R| + ln(2/delta)) / eps^2``."""
    _validate(epsilon, delta)
    raw = (
        RESERVOIR_ADAPTIVE_CONSTANT
        * (log_cardinality + math.log(2.0 / delta))
        / epsilon**2
    )
    return SampleSizeBound(
        value=raw,
        probability=None,
        size=max(1, math.ceil(raw)),
        description="Theorem 1.2 (ReservoirSample, adaptive adversary)",
    )


# ----------------------------------------------------------------------
# Static (VC-dimension) upper bounds
# ----------------------------------------------------------------------
def bernoulli_static_rate(
    vc_dimension: float, epsilon: float, delta: float, stream_length: int
) -> SampleSizeBound:
    """Static-setting Bernoulli rate ``p >= c (d + ln(1/delta)) / (eps^2 n)``."""
    _validate(epsilon, delta)
    if stream_length < 1:
        raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
    raw = (
        STATIC_VC_CONSTANT
        * (vc_dimension + math.log(1.0 / delta))
        / (epsilon**2 * stream_length)
    )
    probability = min(1.0, raw)
    return SampleSizeBound(
        value=raw * stream_length,
        probability=probability,
        size=math.ceil(probability * stream_length),
        description="classical VC bound (BernoulliSample, static adversary)",
    )


def reservoir_static_size(
    vc_dimension: float, epsilon: float, delta: float
) -> SampleSizeBound:
    """Static-setting reservoir size ``k >= c (d + ln(1/delta)) / eps^2``."""
    _validate(epsilon, delta)
    raw = STATIC_VC_CONSTANT * (vc_dimension + math.log(1.0 / delta)) / epsilon**2
    return SampleSizeBound(
        value=raw,
        probability=None,
        size=max(1, math.ceil(raw)),
        description="classical VC bound (ReservoirSample, static adversary)",
    )


# ----------------------------------------------------------------------
# Theorem 1.3 — attack thresholds (lower bound)
# ----------------------------------------------------------------------
def bernoulli_attack_threshold(log_cardinality: float, stream_length: int) -> float:
    """Rate below which Theorem 1.3 guarantees the attack defeats BernoulliSample.

    Returns ``c ln|R| / (n ln n)``; any ``p`` strictly below it (with the
    paper's set system) yields a non-robust sampler.
    """
    if stream_length < 3:
        raise ConfigurationError("the attack threshold needs a stream of length >= 3")
    return ATTACK_THRESHOLD_CONSTANT * log_cardinality / (
        stream_length * math.log(stream_length)
    )


def reservoir_attack_threshold(log_cardinality: float, stream_length: int) -> float:
    """Reservoir size below which Theorem 1.3 guarantees the attack succeeds.

    Returns ``c ln|R| / ln n``.
    """
    if stream_length < 3:
        raise ConfigurationError("the attack threshold needs a stream of length >= 3")
    return ATTACK_THRESHOLD_CONSTANT * log_cardinality / math.log(stream_length)


def attack_universe_bounds(stream_length: int) -> tuple[float, float]:
    """Return the (min, max) universe size for which Theorem 1.3 applies.

    The theorem requires ``n^{6 ln n} <= N <= 2^{n/2}``; experiments pick an
    ``N`` inside this window (or, for tractable memory, the largest
    representable one and note the deviation in EXPERIMENTS.md).
    """
    if stream_length < 3:
        raise ConfigurationError("need stream length >= 3")
    lower = float(stream_length) ** (6.0 * math.log(stream_length))
    upper = 2.0 ** (stream_length / 2.0)
    return lower, upper


# ----------------------------------------------------------------------
# Theorem 1.4 — continuous robustness
# ----------------------------------------------------------------------
def reservoir_continuous_size(
    log_cardinality: float, epsilon: float, delta: float, stream_length: int
) -> SampleSizeBound:
    """Reservoir size for (eps, delta)-continuous robustness (Theorem 1.4).

    ``k >= c (ln|R| + ln(1/delta) + ln(1/eps) + ln ln n) / eps^2``.
    """
    _validate(epsilon, delta)
    if stream_length < 3:
        raise ConfigurationError("continuous robustness needs a stream of length >= 3")
    raw = (
        CONTINUOUS_CONSTANT
        * (
            log_cardinality
            + math.log(1.0 / delta)
            + math.log(1.0 / epsilon)
            + math.log(math.log(stream_length))
        )
        / epsilon**2
    )
    return SampleSizeBound(
        value=raw,
        probability=None,
        size=max(1, math.ceil(raw)),
        description="Theorem 1.4 (ReservoirSample, continuous adaptive robustness)",
    )


def reservoir_continuous_size_union_bound(
    log_cardinality: float, epsilon: float, delta: float, stream_length: int
) -> SampleSizeBound:
    """The naive union-bound continuous size discussed in the proof of Theorem 1.4.

    ``k >= 2 (ln|R| + ln(2/delta) + ln n) / eps^2`` — applies Theorem 1.2 at
    every prefix and union-bounds over all ``n`` of them.  Used by the E5
    ablation to quantify the saving of the checkpoint argument.
    """
    _validate(epsilon, delta)
    if stream_length < 1:
        raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
    raw = (
        RESERVOIR_ADAPTIVE_CONSTANT
        * (log_cardinality + math.log(2.0 / delta) + math.log(stream_length))
        / epsilon**2
    )
    return SampleSizeBound(
        value=raw,
        probability=None,
        size=max(1, math.ceil(raw)),
        description="naive union bound over all prefixes (ReservoirSample)",
    )


def reservoir_continuous_size_static(
    vc_dimension: float, epsilon: float, delta: float, stream_length: int
) -> SampleSizeBound:
    """Continuous-robustness size against a *static* adversary (Theorem 1.4, remark).

    Same shape as :func:`reservoir_continuous_size` with ``ln|R|`` replaced by
    the VC dimension.
    """
    _validate(epsilon, delta)
    if stream_length < 3:
        raise ConfigurationError("continuous robustness needs a stream of length >= 3")
    raw = (
        CONTINUOUS_CONSTANT
        * (
            vc_dimension
            + math.log(1.0 / delta)
            + math.log(1.0 / epsilon)
            + math.log(math.log(stream_length))
        )
        / epsilon**2
    )
    return SampleSizeBound(
        value=raw,
        probability=None,
        size=max(1, math.ceil(raw)),
        description="Theorem 1.4 (static adversary variant)",
    )


# ----------------------------------------------------------------------
# Inverse calculators — given a budget, what guarantee does it buy?
# ----------------------------------------------------------------------
def epsilon_for_reservoir(
    log_cardinality: float, delta: float, reservoir_size: int
) -> float:
    """Invert Theorem 1.2: the epsilon guaranteed by a reservoir of size ``k``."""
    if reservoir_size < 1:
        raise ConfigurationError(f"reservoir size must be >= 1, got {reservoir_size}")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must lie in (0, 1), got {delta}")
    return math.sqrt(
        RESERVOIR_ADAPTIVE_CONSTANT
        * (log_cardinality + math.log(2.0 / delta))
        / reservoir_size
    )


def epsilon_for_bernoulli(
    log_cardinality: float, delta: float, probability: float, stream_length: int
) -> float:
    """Invert Theorem 1.2: the epsilon guaranteed by Bernoulli rate ``p`` on length ``n``."""
    if not 0.0 < probability <= 1.0:
        raise ConfigurationError(f"probability must lie in (0, 1], got {probability}")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError(f"delta must lie in (0, 1), got {delta}")
    if stream_length < 1:
        raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
    return math.sqrt(
        BERNOULLI_ADAPTIVE_CONSTANT
        * (log_cardinality + math.log(4.0 / delta))
        / (probability * stream_length)
    )
