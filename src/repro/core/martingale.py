"""Martingale trackers mirroring Claims 4.2 and 4.3 of the paper.

The heart of the paper's upper-bound proof is that, for any fixed range ``R``,
the quantity

* ``Z_i = |R ∩ S_i| / (n p) - |R ∩ X_i| / n``   (Bernoulli sampling, Claim 4.2)
* ``Z_i = (i / k) |R ∩ S_i| - |R ∩ X_i|``        (reservoir sampling, Claim 4.3)

is a martingale with small step differences and conditional variances, so
Freedman's inequality (Lemma 3.3) pins ``Z_n`` near zero regardless of the
adversary's strategy.  The trackers in this module recompute these quantities
online during a game so that experiment E13 can verify empirically that

1. the sequences behave like martingales (empirical conditional drift ≈ 0),
2. every step difference respects the claimed bound, and
3. the final deviation is no larger than Freedman's inequality predicts (with
   the predicted tail probability).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Sequence

from ..exceptions import ConfigurationError
from .concentration import freedman_tail


@dataclass
class MartingaleTrace:
    """The recorded trajectory of a ``Z^R_i`` martingale during one game.

    Attributes
    ----------
    values:
        ``Z_0, Z_1, ..., Z_n`` (``Z_0 = 0`` always).
    differences:
        Consecutive differences ``Z_i - Z_{i-1}``.
    difference_bounds:
        The per-step theoretical bound on ``|Z_i - Z_{i-1}|`` from the claim.
    variance_bounds:
        The per-step theoretical bound on the conditional variance.
    """

    values: list[float] = field(default_factory=lambda: [0.0])
    differences: list[float] = field(default_factory=list)
    difference_bounds: list[float] = field(default_factory=list)
    variance_bounds: list[float] = field(default_factory=list)

    @property
    def final_value(self) -> float:
        return self.values[-1]

    @property
    def max_abs_value(self) -> float:
        return max(abs(v) for v in self.values)

    @property
    def max_abs_difference(self) -> float:
        return max((abs(d) for d in self.differences), default=0.0)

    def differences_within_bounds(self, tolerance: float = 1e-9) -> bool:
        """Return ``True`` if every step difference respects its claimed bound."""
        return all(
            abs(difference) <= bound + tolerance
            for difference, bound in zip(self.differences, self.difference_bounds)
        )

    def freedman_bound(self, deviation: float) -> float:
        """Freedman tail probability for ``|Z_n - Z_0| >= deviation`` along this trace."""
        return freedman_tail(
            deviation,
            variance_sum=sum(self.variance_bounds),
            max_difference=max(self.difference_bounds, default=0.0),
        )

    def _append(self, value: float, difference_bound: float, variance_bound: float) -> None:
        self.differences.append(value - self.values[-1])
        self.values.append(value)
        self.difference_bounds.append(difference_bound)
        self.variance_bounds.append(variance_bound)


class BernoulliMartingaleTracker:
    """Online tracker of the Claim 4.2 martingale for Bernoulli sampling.

    Usage: after the sampler processes element ``x_i``, call
    :meth:`record_step` with whether ``x_i`` belongs to the tracked range and
    whether it was sampled.  The tracker maintains the counts ``|R ∩ X_i|``
    and ``|R ∩ S_i|`` itself.
    """

    def __init__(self, stream_length: int, probability: float) -> None:
        if stream_length < 1:
            raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
        if not 0.0 < probability <= 1.0:
            raise ConfigurationError(f"probability must lie in (0, 1], got {probability}")
        self.stream_length = int(stream_length)
        self.probability = float(probability)
        self.trace = MartingaleTrace()
        self._stream_hits = 0
        self._sample_hits = 0
        self._steps = 0

    @property
    def theoretical_difference_bound(self) -> float:
        """Claim 4.2: ``|Z_i - Z_{i-1}| <= 1 / (n p)``."""
        return 1.0 / (self.stream_length * self.probability)

    @property
    def theoretical_variance_bound(self) -> float:
        """Claim 4.2: ``Var(Z_i | past) <= 1 / (n^2 p)``."""
        return 1.0 / (self.stream_length**2 * self.probability)

    def record_step(self, in_range: bool, sampled: bool) -> float:
        """Record one round; returns the updated martingale value ``Z_i``."""
        if self._steps >= self.stream_length:
            raise ConfigurationError(
                f"tracker configured for {self.stream_length} steps received more"
            )
        self._steps += 1
        if in_range:
            self._stream_hits += 1
            if sampled:
                self._sample_hits += 1
        a_value = self._stream_hits / self.stream_length
        b_value = self._sample_hits / (self.stream_length * self.probability)
        z_value = b_value - a_value
        self.trace._append(
            z_value, self.theoretical_difference_bound, self.theoretical_variance_bound
        )
        return z_value


class ReservoirMartingaleTracker:
    """Online tracker of the Claim 4.3 martingale for reservoir sampling.

    Because the reservoir replaces elements, the tracker cannot maintain the
    sample-intersection count incrementally from per-element flags alone;
    instead :meth:`record_step` receives the current count ``|R ∩ S_i|``
    (trivially available to the game runner, which sees the whole sample).
    """

    def __init__(self, reservoir_size: int) -> None:
        if reservoir_size < 1:
            raise ConfigurationError(f"reservoir size must be >= 1, got {reservoir_size}")
        self.reservoir_size = int(reservoir_size)
        self.trace = MartingaleTrace()
        self._stream_hits = 0
        self._step = 0

    def difference_bound_at(self, step: int) -> float:
        """Claim 4.3: ``|Z_i - Z_{i-1}| <= i / k``."""
        return step / self.reservoir_size

    def variance_bound_at(self, step: int) -> float:
        """Claim 4.3: ``Var(Z_i | past) <= i / k`` (zero while the reservoir is filling)."""
        if step <= self.reservoir_size:
            return 0.0
        return step / self.reservoir_size

    def record_step(self, in_range: bool, sample_hits: int) -> float:
        """Record one round given the post-update count ``|R ∩ S_i|``."""
        self._step += 1
        if in_range:
            self._stream_hits += 1
        if self._step <= self.reservoir_size:
            # While the reservoir is filling, S_i = X_i and the claim defines
            # A_i = B_i = |R ∩ X_i|, so Z_i = 0.
            a_value = float(self._stream_hits)
            b_value = float(self._stream_hits)
        else:
            a_value = float(self._stream_hits)
            b_value = self._step / self.reservoir_size * sample_hits
        z_value = b_value - a_value
        self.trace._append(
            z_value,
            self.difference_bound_at(self._step),
            self.variance_bound_at(self._step),
        )
        return z_value


def empirical_drift(values: Sequence[float]) -> float:
    """Return the mean step increment of a recorded martingale trajectory.

    For a true martingale the *conditional* drift is zero at every step; the
    empirical mean increment over one trajectory is a noisy proxy, and over
    many trials its average should concentrate near zero.  E13 averages this
    statistic over many independent games.
    """
    if len(values) < 2:
        return 0.0
    return (values[-1] - values[0]) / (len(values) - 1)


def normalized_final_deviation(trace: MartingaleTrace) -> float:
    """Return ``|Z_n| / sqrt(sum of variance bounds)`` — a z-score-like statistic.

    Under the martingale structure this should rarely exceed a small constant;
    systematically large values would indicate the claims are violated.
    """
    variance_sum = sum(trace.variance_bounds)
    if variance_sum <= 0:
        return 0.0 if trace.final_value == 0 else math.inf
    return abs(trace.final_value) / math.sqrt(variance_sum)
