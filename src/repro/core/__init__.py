"""Core machinery: epsilon-approximation, sample-size bounds, concentration, martingales.

This package implements the paper's analytical toolkit as executable code:

* :mod:`repro.core.approximation` — Definition 1.1 and continuous traces,
* :mod:`repro.core.bounds` — Theorems 1.2, 1.3 and 1.4 as calculators,
* :mod:`repro.core.concentration` — Section 3's inequalities (Chernoff,
  Azuma, Freedman/McDiarmid),
* :mod:`repro.core.martingale` — the ``Z^R_i`` martingales of Claims 4.2/4.3,
* :mod:`repro.core.robustness` — end-to-end (epsilon, delta) certificates.
"""

from .approximation import (
    ContinuousApproximationTrace,
    approximation_error,
    approximation_report,
    continuous_approximation_trace,
    density,
    geometric_checkpoints,
    is_epsilon_approximation,
)
from .bounds import (
    SampleSizeBound,
    attack_universe_bounds,
    bernoulli_adaptive_rate,
    bernoulli_attack_threshold,
    bernoulli_static_rate,
    epsilon_for_bernoulli,
    epsilon_for_reservoir,
    reservoir_adaptive_size,
    reservoir_attack_threshold,
    reservoir_continuous_size,
    reservoir_continuous_size_static,
    reservoir_continuous_size_union_bound,
    reservoir_static_size,
)
from .concentration import (
    azuma_tail,
    bernoulli_martingale_tail,
    chernoff_lower_tail,
    chernoff_two_sided,
    chernoff_upper_tail,
    freedman_tail,
    hoeffding_tail,
    reservoir_closed_form_tail,
    reservoir_martingale_tail,
)
from .martingale import (
    BernoulliMartingaleTracker,
    MartingaleTrace,
    ReservoirMartingaleTracker,
    empirical_drift,
    normalized_final_deviation,
)
from .robustness import RobustnessCertificate, certify_bernoulli, certify_reservoir

__all__ = [
    "BernoulliMartingaleTracker",
    "ContinuousApproximationTrace",
    "MartingaleTrace",
    "ReservoirMartingaleTracker",
    "RobustnessCertificate",
    "SampleSizeBound",
    "approximation_error",
    "approximation_report",
    "attack_universe_bounds",
    "azuma_tail",
    "bernoulli_adaptive_rate",
    "bernoulli_attack_threshold",
    "bernoulli_martingale_tail",
    "bernoulli_static_rate",
    "certify_bernoulli",
    "certify_reservoir",
    "chernoff_lower_tail",
    "chernoff_two_sided",
    "chernoff_upper_tail",
    "continuous_approximation_trace",
    "density",
    "empirical_drift",
    "epsilon_for_bernoulli",
    "epsilon_for_reservoir",
    "freedman_tail",
    "geometric_checkpoints",
    "hoeffding_tail",
    "is_epsilon_approximation",
    "normalized_final_deviation",
    "reservoir_adaptive_size",
    "reservoir_attack_threshold",
    "reservoir_closed_form_tail",
    "reservoir_continuous_size",
    "reservoir_continuous_size_static",
    "reservoir_continuous_size_union_bound",
    "reservoir_martingale_tail",
    "reservoir_static_size",
]
