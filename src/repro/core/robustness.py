"""Theoretical robustness certificates for sampler configurations.

Given a concrete sampler configuration (a Bernoulli rate ``p`` or a reservoir
size ``k``), a stream length and a set system, these functions compute the
failure probability ``delta`` that Theorem 1.2's proof certifies for a target
``epsilon``: the per-range tails of Lemma 4.1 are instantiated via Freedman's
and Chernoff's inequalities, and a union bound over the ``|R|`` ranges yields
the certified ``delta``.  Experiments compare these *certified* probabilities
with the *empirical* failure frequencies measured under attack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ConfigurationError
from ..setsystems.base import SetSystem
from .concentration import (
    bernoulli_martingale_tail,
    chernoff_two_sided,
    reservoir_closed_form_tail,
)


@dataclass(frozen=True)
class RobustnessCertificate:
    """A certified (epsilon, delta) robustness guarantee for a configuration.

    Attributes
    ----------
    epsilon:
        Target approximation error.
    delta:
        Certified failure probability (capped at 1; a value of 1 means the
        analysis certifies nothing for this configuration).
    per_range_delta:
        Failure probability certified for a single fixed range (Lemma 4.1).
    log_cardinality:
        ``ln |R|`` of the set system used in the union bound.
    mechanism:
        ``"bernoulli"`` or ``"reservoir"``.
    details:
        Free-form dictionary with the intermediate quantities, for reporting.
    """

    epsilon: float
    delta: float
    per_range_delta: float
    log_cardinality: float
    mechanism: str
    details: dict

    @property
    def is_vacuous(self) -> bool:
        """True when the certificate fails to guarantee anything (delta >= 1)."""
        return self.delta >= 1.0


def certify_bernoulli(
    probability: float,
    stream_length: int,
    epsilon: float,
    set_system: SetSystem | None = None,
    log_cardinality: float | None = None,
) -> RobustnessCertificate:
    """Certify the (epsilon, delta)-robustness of BernoulliSample(p) on length-n streams.

    Follows the proof of Lemma 4.1 (Bernoulli case): the deviation between the
    normalised sample density and the stream density is split into a
    martingale term (Freedman) and a sample-size term (Chernoff), each at
    deviation ``epsilon / 2``; the union bound over the ranges multiplies the
    per-range failure probability by ``|R|``.
    """
    log_r = _resolve_log_cardinality(set_system, log_cardinality)
    if not 0.0 < probability <= 1.0:
        raise ConfigurationError(f"probability must lie in (0, 1], got {probability}")
    if stream_length < 1:
        raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must lie in (0, 1), got {epsilon}")

    martingale_term = bernoulli_martingale_tail(epsilon, stream_length, probability)
    expected_sample = probability * stream_length
    size_term = chernoff_two_sided(expected_sample, epsilon / 2.0)
    per_range = min(1.0, martingale_term + size_term)
    delta = min(1.0, per_range * math.exp(log_r))
    return RobustnessCertificate(
        epsilon=epsilon,
        delta=delta,
        per_range_delta=per_range,
        log_cardinality=log_r,
        mechanism="bernoulli",
        details={
            "probability": probability,
            "stream_length": stream_length,
            "expected_sample_size": expected_sample,
            "martingale_tail": martingale_term,
            "sample_size_tail": size_term,
        },
    )


def certify_reservoir(
    reservoir_size: int,
    epsilon: float,
    set_system: SetSystem | None = None,
    log_cardinality: float | None = None,
) -> RobustnessCertificate:
    """Certify the (epsilon, delta)-robustness of ReservoirSample(k).

    Follows the proof of Lemma 4.1 (reservoir case): the per-range tail is the
    closed form ``2 exp(-eps^2 k / 2)``, and the union bound multiplies by
    ``|R|``.  The certificate is independent of the stream length (for
    ``n >= 2``), exactly as in the paper.
    """
    log_r = _resolve_log_cardinality(set_system, log_cardinality)
    if reservoir_size < 1:
        raise ConfigurationError(f"reservoir size must be >= 1, got {reservoir_size}")
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must lie in (0, 1), got {epsilon}")
    per_range = reservoir_closed_form_tail(epsilon, reservoir_size)
    delta = min(1.0, per_range * math.exp(log_r))
    return RobustnessCertificate(
        epsilon=epsilon,
        delta=delta,
        per_range_delta=per_range,
        log_cardinality=log_r,
        mechanism="reservoir",
        details={"reservoir_size": reservoir_size},
    )


def _resolve_log_cardinality(
    set_system: SetSystem | None, log_cardinality: float | None
) -> float:
    if set_system is None and log_cardinality is None:
        raise ConfigurationError("provide either a set system or log_cardinality")
    if set_system is not None and log_cardinality is not None:
        raise ConfigurationError("provide only one of set_system / log_cardinality")
    if set_system is not None:
        return set_system.log_cardinality()
    assert log_cardinality is not None
    if log_cardinality < 0:
        raise ConfigurationError(f"log cardinality must be >= 0, got {log_cardinality}")
    return log_cardinality
