"""Epsilon-approximation utilities built on top of the set-system layer.

This module provides the functional API most callers use: given a stream, a
sample and a set system, compute the worst-range discrepancy, decide whether
the sample is an epsilon-approximation (Definition 1.1), and track the
discrepancy continuously over a stream prefix-by-prefix (needed by the
continuous-robustness experiments of Theorem 1.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from ..exceptions import EmptySampleError
from ..setsystems.base import DiscrepancyResult, SetSystem


def density(range_: Any, elements: Sequence[Any]) -> float:
    """Return the fraction of ``elements`` lying in ``range_``.

    ``range_`` may be any object supporting ``in`` (all :class:`Range`
    implementations do); repetitions in ``elements`` count individually.
    """
    if len(elements) == 0:
        raise EmptySampleError("density of a range in an empty sequence is undefined")
    return sum(1 for element in elements if element in range_) / len(elements)


def approximation_error(
    set_system: SetSystem, stream: Sequence[Any], sample: Sequence[Any]
) -> float:
    """Return ``sup_R |d_R(stream) - d_R(sample)|`` for the given set system."""
    return set_system.max_discrepancy(stream, sample).error


def approximation_report(
    set_system: SetSystem, stream: Sequence[Any], sample: Sequence[Any]
) -> DiscrepancyResult:
    """Return the full discrepancy result (error, witness range, exactness)."""
    return set_system.max_discrepancy(stream, sample)


def is_epsilon_approximation(
    set_system: SetSystem,
    stream: Sequence[Any],
    sample: Sequence[Any],
    epsilon: float,
) -> bool:
    """Definition 1.1: is ``sample`` an ``epsilon``-approximation of ``stream``?"""
    return approximation_error(set_system, stream, sample) <= epsilon


@dataclass
class ContinuousApproximationTrace:
    """Prefix-by-prefix record of the approximation error along a stream.

    Produced by :func:`continuous_approximation_trace`.  ``checkpoints`` holds
    the prefix lengths at which the error was evaluated and ``errors`` the
    corresponding worst-range discrepancies; ``max_error`` is the maximum over
    all evaluated checkpoints, which is the quantity Theorem 1.4 bounds.
    """

    checkpoints: list[int] = field(default_factory=list)
    errors: list[float] = field(default_factory=list)

    @property
    def max_error(self) -> float:
        return max(self.errors) if self.errors else 0.0

    def error_at(self, checkpoint: int) -> float:
        """Return the recorded error at a specific checkpoint."""
        index = self.checkpoints.index(checkpoint)
        return self.errors[index]

    def violations(self, epsilon: float) -> list[int]:
        """Return the checkpoints at which the sample was *not* an epsilon-approximation."""
        return [
            checkpoint
            for checkpoint, error in zip(self.checkpoints, self.errors)
            if error > epsilon
        ]


def continuous_approximation_trace(
    set_system: SetSystem,
    stream: Sequence[Any],
    sample_at: Callable[[int], Sequence[Any]],
    checkpoints: Iterable[int] | None = None,
) -> ContinuousApproximationTrace:
    """Evaluate the approximation error at a set of prefix lengths.

    Parameters
    ----------
    set_system:
        The set system with respect to which approximation is measured.
    stream:
        The full stream; prefix ``i`` is ``stream[:i]``.
    sample_at:
        Callback returning the sample held by the algorithm after processing
        ``i`` elements.  Game runners record these snapshots.
    checkpoints:
        Prefix lengths to evaluate; defaults to every prefix length from 1 to
        ``len(stream)`` (exact but expensive — the continuous experiments pass
        the paper's sparser geometric checkpoints instead).
    """
    trace = ContinuousApproximationTrace()
    if checkpoints is None:
        checkpoints = range(1, len(stream) + 1)
    for checkpoint in checkpoints:
        prefix = stream[:checkpoint]
        sample = sample_at(checkpoint)
        if len(sample) == 0:
            trace.checkpoints.append(checkpoint)
            trace.errors.append(1.0)
            continue
        trace.checkpoints.append(checkpoint)
        trace.errors.append(set_system.max_discrepancy(prefix, sample).error)
    return trace


def geometric_checkpoints(start: int, end: int, ratio: float) -> list[int]:
    """Return the paper's checkpoint schedule ``i_{j+1} = floor((1 + ratio) i_j)``.

    Theorem 1.4's proof evaluates robustness only at ``O(ln(n) / ratio)``
    geometrically spaced positions; this helper reproduces that schedule
    (always including ``start`` and ``end``).
    """
    if start < 1:
        raise ValueError(f"start must be >= 1, got {start}")
    if end < start:
        raise ValueError(f"end must be >= start, got start={start}, end={end}")
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    points = [start]
    current = start
    while current < end:
        nxt = int((1.0 + ratio) * current)
        if nxt <= current:
            nxt = current + 1
        current = min(nxt, end)
        points.append(current)
    return points
