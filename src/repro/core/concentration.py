"""Concentration inequalities used in the paper's analysis (Section 3).

These are provided as plain numeric functions so that experiments can overlay
the *predicted* tail probabilities on the *empirical* deviation frequencies
(experiment E13), and so that the bound calculators in :mod:`repro.core.bounds`
have a single authoritative source for the inequalities they instantiate.

* :func:`chernoff_upper_tail` / :func:`chernoff_lower_tail` — Theorem 3.1.
* :func:`hoeffding_tail` — the classical two-sided bound for sums of bounded
  independent variables (used for sanity checks).
* :func:`azuma_tail` — Azuma–Hoeffding for bounded-difference martingales.
* :func:`freedman_tail` — the McDiarmid/Freedman variance-sensitive martingale
  inequality (Lemma 3.3), which is the engine of the paper's upper bounds.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..exceptions import ConfigurationError


def chernoff_lower_tail(mean: float, relative_deviation: float) -> float:
    """Pr[X <= (1 - delta) mu] <= exp(-delta^2 mu / 2)  (Theorem 3.1, lower tail)."""
    if mean < 0:
        raise ConfigurationError(f"mean must be non-negative, got {mean}")
    if not 0.0 < relative_deviation < 1.0:
        raise ConfigurationError(
            f"relative deviation must lie in (0, 1), got {relative_deviation}"
        )
    return math.exp(-(relative_deviation**2) * mean / 2.0)


def chernoff_upper_tail(mean: float, relative_deviation: float) -> float:
    """Pr[X >= (1 + delta) mu] <= exp(-delta^2 mu / (2 + 2 delta / 3))  (Theorem 3.1)."""
    if mean < 0:
        raise ConfigurationError(f"mean must be non-negative, got {mean}")
    if relative_deviation <= 0.0:
        raise ConfigurationError(
            f"relative deviation must be positive, got {relative_deviation}"
        )
    return math.exp(
        -(relative_deviation**2) * mean / (2.0 + 2.0 * relative_deviation / 3.0)
    )


def chernoff_two_sided(mean: float, relative_deviation: float) -> float:
    """Union bound of the two Chernoff tails (capped at 1)."""
    return min(
        1.0,
        chernoff_lower_tail(mean, min(relative_deviation, 1.0 - 1e-12))
        + chernoff_upper_tail(mean, relative_deviation),
    )


def hoeffding_tail(num_variables: int, deviation: float, range_width: float = 1.0) -> float:
    """Two-sided Hoeffding bound for a sum of ``num_variables`` variables in ``[0, range_width]``.

    ``Pr[|X - E X| >= deviation] <= 2 exp(-2 deviation^2 / (n width^2))``.
    """
    if num_variables < 1:
        raise ConfigurationError(f"need at least one variable, got {num_variables}")
    if deviation < 0:
        raise ConfigurationError(f"deviation must be non-negative, got {deviation}")
    if range_width <= 0:
        raise ConfigurationError(f"range width must be positive, got {range_width}")
    return min(
        1.0, 2.0 * math.exp(-2.0 * deviation**2 / (num_variables * range_width**2))
    )


def azuma_tail(deviation: float, difference_bounds: Sequence[float]) -> float:
    """Two-sided Azuma–Hoeffding bound for a martingale with per-step difference bounds.

    ``Pr[|X_n - X_0| >= lambda] <= 2 exp(-lambda^2 / (2 sum_i c_i^2))``.
    """
    if deviation < 0:
        raise ConfigurationError(f"deviation must be non-negative, got {deviation}")
    total = sum(c**2 for c in difference_bounds)
    if total <= 0:
        return 0.0 if deviation > 0 else 1.0
    return min(1.0, 2.0 * math.exp(-(deviation**2) / (2.0 * total)))


def freedman_tail(
    deviation: float, variance_sum: float, max_difference: float, two_sided: bool = True
) -> float:
    """Freedman/McDiarmid martingale tail bound (Lemma 3.3).

    ``Pr[X_n - X_0 >= lambda] <= exp(-lambda^2 / (2 sum_i sigma_i^2 + M lambda / 3))``
    where ``sigma_i^2`` bound the conditional variances and ``M`` bounds the
    step differences.  With ``two_sided=True`` the factor-2 variant of the
    lemma is returned.
    """
    if deviation < 0:
        raise ConfigurationError(f"deviation must be non-negative, got {deviation}")
    if variance_sum < 0:
        raise ConfigurationError(f"variance sum must be non-negative, got {variance_sum}")
    if max_difference < 0:
        raise ConfigurationError(
            f"max difference must be non-negative, got {max_difference}"
        )
    denominator = 2.0 * variance_sum + max_difference * deviation / 3.0
    if denominator <= 0:
        return 0.0 if deviation > 0 else 1.0
    bound = math.exp(-(deviation**2) / denominator)
    if two_sided:
        bound *= 2.0
    return min(1.0, bound)


def bernoulli_martingale_tail(
    epsilon: float, stream_length: int, probability: float
) -> float:
    """Tail bound used in the proof of Lemma 4.1 (Bernoulli case).

    Instantiates Freedman's inequality for the martingale ``Z^R_i`` of
    Claim 4.2, which has conditional variances at most ``1/(n^2 p)`` and step
    differences at most ``1/(n p)``, at deviation ``epsilon / 2``.
    """
    if stream_length < 1:
        raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
    if not 0.0 < probability <= 1.0:
        raise ConfigurationError(f"probability must lie in (0, 1], got {probability}")
    variance_sum = stream_length * (1.0 / (stream_length**2 * probability))
    max_difference = 1.0 / (stream_length * probability)
    return freedman_tail(epsilon / 2.0, variance_sum, max_difference)


def reservoir_martingale_tail(epsilon: float, stream_length: int, reservoir_size: int) -> float:
    """Tail bound used in the proof of Lemma 4.1 (reservoir case).

    Instantiates Freedman's inequality for the martingale of Claim 4.3, with
    conditional variances at most ``i/k`` and step differences at most
    ``n/k``, at deviation ``epsilon * n``; the simplified closed form in the
    paper is ``2 exp(-eps^2 k / 2)`` for ``n >= 2``.
    """
    if stream_length < 1:
        raise ConfigurationError(f"stream length must be >= 1, got {stream_length}")
    if reservoir_size < 1:
        raise ConfigurationError(f"reservoir size must be >= 1, got {reservoir_size}")
    variance_sum = sum(i / reservoir_size for i in range(1, stream_length + 1))
    max_difference = stream_length / reservoir_size
    return freedman_tail(epsilon * stream_length, variance_sum, max_difference)


def reservoir_closed_form_tail(epsilon: float, reservoir_size: int) -> float:
    """The paper's simplified reservoir tail: ``2 exp(-eps^2 k / 2)``."""
    if reservoir_size < 1:
        raise ConfigurationError(f"reservoir size must be >= 1, got {reservoir_size}")
    return min(1.0, 2.0 * math.exp(-(epsilon**2) * reservoir_size / 2.0))
