"""The built-in attack scenarios.

Each scenario is a declarative :class:`~repro.scenarios.config.ScenarioConfig`
registered under a stable name, plus a ``run_<name>()`` convenience runner.
They cover the attack surface the paper maps out — prefix flooding, adaptive
bisection, eviction chasing, heavy-hitter spoofing, quantile shifting — and
the deployment shapes of Section 1.2 (sliding windows, distributed sites),
with a static baseline for contrast.  All of them execute through
:class:`~repro.adversary.batch.BatchGameRunner`, so worker pools and
scheduling-independent seeding apply uniformly.

Scale notes: the default configs are sized for interactive CLI use (a few
seconds each); the scenario test suite re-runs every entry at a much smaller
scale via ``run_scenario(name, stream_length=..., ...)`` overrides.
"""

from __future__ import annotations

from typing import Any

from .config import ScenarioConfig
from .engine import ScenarioResult
from .registry import Scenario, register_scenario, run_scenario

__all__ = [
    "run_bisection_probe",
    "run_cadence_probe",
    "run_colluding_split_budget",
    "run_cross_shard_skew",
    "run_distributed_skew",
    "run_heavy_hitter_spoof",
    "run_hotspot_split_flood",
    "run_oversample_defense",
    "run_prefix_flood",
    "run_probe_then_strike",
    "run_quantile_shift",
    "run_reactive_prefix_flood",
    "run_recovery_window_strike",
    "run_reservoir_eviction",
    "run_shard_hotspot",
    "run_sharded_heavy_hitter_spoof",
    "run_sharded_prefix_flood",
    "run_sharded_reactive_skew",
    "run_sharded_sliding_window_burst",
    "run_sliding_window_burst",
    "run_spam_then_poison",
    "run_stale_coordinator_probe",
    "run_static_baseline",
]

_UNIVERSE = 256
_STREAM = 2048


register_scenario(
    Scenario(
        name="prefix_flood",
        description=(
            "Greedy density-gap adversary floods a target prefix so the "
            "maintained sample misstates its mass (the moderate-universe "
            "analogue of the Figure-3 attack)."
        ),
        base_config=ScenarioConfig(
            name="prefix_flood",
            stream_length=_STREAM,
            universe_size=_UNIVERSE,
            samplers={
                "bernoulli-0.1": {"family": "bernoulli", "probability": 0.1},
                "reservoir-32": {"family": "reservoir", "capacity": 32},
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.25},
            },
            set_system={"kind": "prefix"},
        ),
    )
)

register_scenario(
    Scenario(
        name="bisection_probe",
        description=(
            "The introduction's bisection attack on [0, 1]: every stored "
            "element ends up below every unstored one, so the worst prefix "
            "is maximally misrepresented despite the infinite-VC universe."
        ),
        base_config=ScenarioConfig(
            name="bisection_probe",
            stream_length=_STREAM,
            universe_size=_UNIVERSE,
            samplers={
                "bernoulli-0.05": {"family": "bernoulli", "probability": 0.05},
                "reservoir-24": {"family": "reservoir", "capacity": 24},
            },
            adversary={"family": "bisection", "low": 0.0, "high": 1.0},
            benign={"kind": "uniform_float", "low": 0.0, "high": 1.0},
            set_system={"kind": "continuous_prefix", "low": 0.0, "high": 1.0},
        ),
    )
)

register_scenario(
    Scenario(
        name="reservoir_eviction",
        description=(
            "Eviction-chaser adversary exploits the reservoir's visible "
            "acceptance schedule to starve a target prefix of "
            "representation."
        ),
        base_config=ScenarioConfig(
            name="reservoir_eviction",
            stream_length=_STREAM,
            universe_size=_UNIVERSE,
            samplers={"reservoir-32": {"family": "reservoir", "capacity": 32}},
            adversary={
                "family": "eviction_chaser",
                "target": {"kind": "prefix", "bound_fraction": 0.25},
                "reservoir_size": 32,
            },
            set_system={"kind": "prefix"},
        ),
    )
)

register_scenario(
    Scenario(
        name="heavy_hitter_spoof",
        description=(
            "Switching-singleton adversary manufactures a false heavy "
            "hitter by abandoning every value the sampler stores; runs "
            "under the update-only knowledge model."
        ),
        base_config=ScenarioConfig(
            name="heavy_hitter_spoof",
            stream_length=_STREAM,
            universe_size=_UNIVERSE,
            knowledge="updates",
            samplers={
                "reservoir-48": {"family": "reservoir", "capacity": 48},
                "bernoulli-0.1": {"family": "bernoulli", "probability": 0.1},
            },
            adversary={"family": "switching_singleton"},
            set_system={"kind": "singleton"},
        ),
    )
)

register_scenario(
    Scenario(
        name="quantile_shift",
        description=(
            "Discrete median attack walks the stream's quantiles away from "
            "what the maintained sample reports (Corollary 1.5's failure "
            "mode for under-sized samples)."
        ),
        base_config=ScenarioConfig(
            name="quantile_shift",
            stream_length=_STREAM,
            universe_size=_UNIVERSE,
            samplers={
                "reservoir-32": {"family": "reservoir", "capacity": 32},
                "bernoulli-0.1": {"family": "bernoulli", "probability": 0.1},
            },
            adversary={"family": "median_attack"},
            set_system={"kind": "prefix"},
        ),
    )
)

register_scenario(
    Scenario(
        name="sliding_window_burst",
        description=(
            "Burst attack against a sliding-window sampler: a flooded "
            "narrow interval dominates the window while the full-stream "
            "densities say otherwise."
        ),
        base_config=ScenarioConfig(
            name="sliding_window_burst",
            stream_length=_STREAM,
            universe_size=_UNIVERSE,
            samplers={
                "window-32/256": {
                    "family": "sliding_window",
                    "capacity": 32,
                    "window": 256,
                }
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "interval", "low": 1, "high_fraction": 0.125},
            },
            set_system={"kind": "interval"},
        ),
    )
)

register_scenario(
    Scenario(
        name="distributed_skew",
        description=(
            "Adaptive prefix skew against a multi-site distributed "
            "reservoir: the adversary only ever observes the coordinator's "
            "merged sample, as a real probing client would."
        ),
        base_config=ScenarioConfig(
            name="distributed_skew",
            stream_length=1024,
            universe_size=_UNIVERSE,
            samplers={
                "distributed-4x32": {
                    "family": "distributed_reservoir",
                    "sites": 4,
                    "capacity": 32,
                }
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.25},
            },
            set_system={"kind": "prefix"},
        ),
    )
)

register_scenario(
    Scenario(
        name="shard_hotspot",
        description=(
            "Greedy prefix flood against a 4-site sharded reservoir behind "
            "adversarially skewed routing: one hotspot site absorbs ~85% of "
            "the traffic, so the merged [CTW16]-style coordinator sample is "
            "dominated by a single shard's local reservoir."
        ),
        base_config=ScenarioConfig(
            name="shard_hotspot",
            stream_length=1024,
            universe_size=_UNIVERSE,
            samplers={
                "sharded-reservoir-4x32": {"family": "reservoir", "capacity": 32}
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.25},
            },
            set_system={"kind": "prefix"},
            sharding={
                "sites": 4,
                "strategy": {"kind": "skewed", "hot_fraction": 0.85},
            },
        ),
    )
)

register_scenario(
    Scenario(
        name="cross_shard_skew",
        description=(
            "Greedy interval flood under value-affinity (hash) routing: the "
            "flooded values always land on the same shard, so the attack "
            "concentrates on one site's reservoir while the merged view is "
            "judged against the global stream."
        ),
        base_config=ScenarioConfig(
            name="cross_shard_skew",
            stream_length=1024,
            universe_size=_UNIVERSE,
            samplers={
                "sharded-reservoir-4x32": {"family": "reservoir", "capacity": 32}
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "interval", "low": 1, "high_fraction": 0.25},
            },
            set_system={"kind": "interval"},
            sharding={"sites": 4, "strategy": "hash"},
        ),
    )
)

register_scenario(
    Scenario(
        name="sharded_heavy_hitter_spoof",
        description=(
            "The switching-singleton heavy-hitter spoof replayed against a "
            "4-site sharded reservoir under the update-only knowledge model "
            "— the probing client sees merged acceptances, never which site "
            "stored its element."
        ),
        base_config=ScenarioConfig(
            name="sharded_heavy_hitter_spoof",
            stream_length=1024,
            universe_size=_UNIVERSE,
            knowledge="updates",
            samplers={
                "sharded-reservoir-4x48": {"family": "reservoir", "capacity": 48}
            },
            adversary={"family": "switching_singleton"},
            set_system={"kind": "singleton"},
            sharding={"sites": 4, "strategy": "random"},
        ),
    )
)

register_scenario(
    Scenario(
        name="sharded_prefix_flood",
        description=(
            "The prefix_flood scenario run as a sharded deployment (the "
            "`sharding` block applied to the same sampler grid): 4 sites, "
            "random routing, the adversary probing the merged sample."
        ),
        base_config=ScenarioConfig(
            name="sharded_prefix_flood",
            stream_length=1024,
            universe_size=_UNIVERSE,
            samplers={
                "bernoulli-0.1": {"family": "bernoulli", "probability": 0.1},
                "reservoir-32": {"family": "reservoir", "capacity": 32},
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.25},
            },
            set_system={"kind": "prefix"},
            sharding={"sites": 4, "strategy": "random"},
        ),
    )
)

register_scenario(
    Scenario(
        name="sharded_sliding_window_burst",
        description=(
            "The sliding-window burst attack against sharded per-site "
            "windows: each site keeps a recency window of its own substream "
            "and the merged sample is the k smallest priorities among all "
            "live candidates."
        ),
        base_config=ScenarioConfig(
            name="sharded_sliding_window_burst",
            stream_length=1024,
            universe_size=_UNIVERSE,
            samplers={
                "window-32/256": {
                    "family": "sliding_window",
                    "capacity": 32,
                    "window": 256,
                }
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "interval", "low": 1, "high_fraction": 0.125},
            },
            set_system={"kind": "interval"},
            sharding={"sites": 4, "strategy": "random"},
        ),
    )
)

register_scenario(
    Scenario(
        name="reactive_prefix_flood",
        description=(
            "The greedy prefix flood at a declared reaction cadence: the "
            "adversary re-reads the sample once every 16 rounds and commits "
            "whole decision blocks in between, so the chunked engine "
            "accelerates the attack instead of falling back to per-element "
            "play.  The cadence divides every budget grid point's attack "
            "window, keeping segmentation — and hence budget monotonicity — "
            "identical across budgets."
        ),
        base_config=ScenarioConfig(
            name="reactive_prefix_flood",
            stream_length=4096,
            universe_size=_UNIVERSE,
            decision_period=16,
            samplers={
                "bernoulli-0.1": {"family": "bernoulli", "probability": 0.1},
                "reservoir-32": {"family": "reservoir", "capacity": 32},
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.25},
            },
            set_system={"kind": "prefix"},
        ),
    )
)

register_scenario(
    Scenario(
        name="cadence_probe",
        description=(
            "The switching-singleton heavy-hitter probe rate-limited to one "
            "observation per 16 rounds (a prober whose feedback — e.g. a "
            "published top-k report — refreshes on a cadence): each block "
            "floods one target, caught targets are abandoned only at block "
            "boundaries."
        ),
        base_config=ScenarioConfig(
            name="cadence_probe",
            stream_length=_STREAM,
            universe_size=_UNIVERSE,
            knowledge="updates",
            decision_period=16,
            samplers={
                "reservoir-48": {"family": "reservoir", "capacity": 48},
                "bernoulli-0.1": {"family": "bernoulli", "probability": 0.1},
            },
            adversary={"family": "switching_singleton"},
            set_system={"kind": "singleton"},
        ),
    )
)

register_scenario(
    Scenario(
        name="sharded_reactive_skew",
        description=(
            "Cadence-limited greedy interval flood against a 4-site sharded "
            "reservoir behind skewed (hotspot) routing: the adversary probes "
            "the merged coordinator view once every 16 rounds — each probe a "
            "fresh coordinator merge — and floods whole blocks in between."
        ),
        base_config=ScenarioConfig(
            name="sharded_reactive_skew",
            stream_length=1024,
            universe_size=_UNIVERSE,
            decision_period=16,
            samplers={
                "sharded-reservoir-4x32": {"family": "reservoir", "capacity": 32}
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "interval", "low": 1, "high_fraction": 0.25},
            },
            set_system={"kind": "interval"},
            sharding={
                "sites": 4,
                "strategy": {"kind": "skewed", "hot_fraction": 0.85},
            },
        ),
    )
)

register_scenario(
    Scenario(
        name="spam_then_poison",
        description=(
            "Phased campaign: a Zipf spammer floods the first half of the "
            "stream (filling the sample with heavy-hitter mass), then a "
            "greedy density-gap poisoner takes over and drives the target "
            "prefix's misrepresentation from the spam-shaped sample."
        ),
        base_config=ScenarioConfig(
            name="spam_then_poison",
            stream_length=_STREAM,
            universe_size=_UNIVERSE,
            samplers={
                "bernoulli-0.1": {"family": "bernoulli", "probability": 0.1},
                "reservoir-32": {"family": "reservoir", "capacity": 32},
            },
            campaign={
                "mode": "phased",
                "members": [
                    {
                        "label": "spam",
                        "start": 0.0,
                        "adversary": {"family": "zipf", "exponent": 1.5},
                    },
                    {
                        "label": "poison",
                        "start": 0.5,
                        "adversary": {
                            "family": "greedy_density",
                            "target": {"kind": "prefix", "bound_fraction": 0.25},
                        },
                    },
                ],
            },
            set_system={"kind": "prefix"},
        ),
    )
)

register_scenario(
    Scenario(
        name="probe_then_strike",
        description=(
            "Phased campaign: the discrete median attack probes the "
            "sampler's quantile behaviour for the opening 40% of the "
            "stream, then a greedy density-gap strike exploits the probed "
            "state against a wide prefix target."
        ),
        base_config=ScenarioConfig(
            name="probe_then_strike",
            stream_length=_STREAM,
            universe_size=_UNIVERSE,
            samplers={
                "reservoir-32": {"family": "reservoir", "capacity": 32},
                "bernoulli-0.1": {"family": "bernoulli", "probability": 0.1},
            },
            campaign={
                "mode": "phased",
                "members": [
                    {
                        "label": "probe",
                        "start": 0.0,
                        "adversary": {"family": "median_attack"},
                    },
                    {
                        "label": "strike",
                        "start": 0.4,
                        "adversary": {
                            "family": "greedy_density",
                            "target": {"kind": "prefix", "bound_fraction": 0.5},
                        },
                    },
                ],
            },
            set_system={"kind": "prefix"},
        ),
    )
)

register_scenario(
    Scenario(
        name="colluding_split_budget",
        description=(
            "Interleaved campaign against a 4-site sharded reservoir under "
            "value-affinity (hash) routing: two greedy density-gap "
            "adversaries split the round budget in 16-round slots, one "
            "flooding the low band, the other the high band, so the attack "
            "pressure lands on different shards while the merged "
            "coordinator view is judged against the combined stream."
        ),
        base_config=ScenarioConfig(
            name="colluding_split_budget",
            stream_length=1024,
            universe_size=_UNIVERSE,
            decision_period=8,
            samplers={
                "sharded-reservoir-4x32": {"family": "reservoir", "capacity": 32}
            },
            campaign={
                "mode": "interleaved",
                "stride": 16,
                "members": [
                    {
                        "label": "low-band",
                        "adversary": {
                            "family": "greedy_density",
                            "target": {
                                "kind": "interval",
                                "low": 1,
                                "high_fraction": 0.25,
                            },
                        },
                    },
                    {
                        "label": "high-band",
                        "adversary": {
                            "family": "greedy_density",
                            "target": {
                                "kind": "interval",
                                "low_fraction": 0.75,
                                "high_fraction": 1.0,
                                "out_element": 1,
                            },
                        },
                    },
                ],
            },
            set_system={"kind": "interval"},
            sharding={"sites": 4, "strategy": "hash"},
        ),
    )
)

register_scenario(
    Scenario(
        name="static_baseline",
        description=(
            "Oblivious uniform stream — the static setting in which "
            "VC-sized samples suffice; the control against which every "
            "attack scenario is compared."
        ),
        base_config=ScenarioConfig(
            name="static_baseline",
            stream_length=_STREAM,
            universe_size=_UNIVERSE,
            knowledge="oblivious",
            samplers={
                "bernoulli-0.1": {"family": "bernoulli", "probability": 0.1},
                "reservoir-32": {"family": "reservoir", "capacity": 32},
            },
            adversary={"family": "uniform"},
            set_system={"kind": "prefix"},
        ),
        # The attack and the benign filler are the same uniform draw from the
        # same generator, so the budget knob cannot change the stream; the
        # grid just documents (and the suite verifies) that invariance.
        budget_grid=(0.0, 1.0),
    )
)

register_scenario(
    Scenario(
        name="oversample_defense",
        description=(
            "The prefix flood replayed against a Theorem-1.2-oversampled "
            "reservoir: the same adversary, a sample sized for ln|R| "
            "instead of VC, and the violations disappear.  Expressed "
            "through the defense axis (factor-4 oversampling of a VC-sized "
            "reservoir resolves to the same capacity-192 sampler)."
        ),
        base_config=ScenarioConfig(
            name="oversample_defense",
            stream_length=_STREAM,
            universe_size=_UNIVERSE,
            samplers={"reservoir-192": {"family": "reservoir", "capacity": 48}},
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.25},
            },
            set_system={"kind": "prefix"},
            defense={"kind": "oversample", "factor": 4},
        ),
    )
)

# ----------------------------------------------------------------------
# Replication defenses at matched total space (PR 7).  All three are
# endpoint games: ``attacked_peak_discrepancy`` is the final-state error,
# i.e. the conditioning the adversary accumulated over the whole stream,
# free of the small-sample noise that dominates early-checkpoint peaks.
# ----------------------------------------------------------------------

register_scenario(
    Scenario(
        name="sketch_switching_defense",
        description=(
            "The heavy-hitter spoof against a sketch-switching pair of "
            "half-rate Bernoulli copies [BJWY20]: the switch retires the "
            "copy the spoofer conditioned, flattening the attack's excess "
            "at matched total space."
        ),
        base_config=ScenarioConfig(
            name="sketch_switching_defense",
            stream_length=_STREAM,
            universe_size=_UNIVERSE,
            continuous=False,
            samplers={"bernoulli-0.2": {"family": "bernoulli", "probability": 0.2}},
            adversary={"family": "switching_singleton"},
            set_system={"kind": "singleton"},
            defense={"kind": "sketch_switching", "copies": 2, "matched_space": True},
        ),
    )
)

register_scenario(
    Scenario(
        name="dp_aggregate_defense",
        description=(
            "The continuous bisection attack against a DP-aggregated pair "
            "of Bernoulli copies [HKMMS20]: round-hashed copy rotation "
            "denies the bisection a consistent view, beating the undefended "
            "sampler outright at matched total space."
        ),
        base_config=ScenarioConfig(
            name="dp_aggregate_defense",
            stream_length=_STREAM,
            universe_size=_UNIVERSE,
            continuous=False,
            samplers={"bernoulli-0.2": {"family": "bernoulli", "probability": 0.2}},
            adversary={"family": "bisection", "low": 0.0, "high": 1.0},
            benign={"kind": "uniform_float", "low": 0.0, "high": 1.0},
            set_system={"kind": "continuous_prefix", "low": 0.0, "high": 1.0},
            defense={"kind": "dp_aggregate", "copies": 2, "matched_space": True},
        ),
    )
)

register_scenario(
    Scenario(
        name="difference_estimator_defense",
        description=(
            "The greedy interval flood against a sliding-window sampler "
            "defended by window-rotation difference estimators [WZ21]: "
            "each copy's conditioning expires with its window, flattening "
            "the attack's excess at matched total space."
        ),
        base_config=ScenarioConfig(
            name="difference_estimator_defense",
            stream_length=2 * _STREAM,
            universe_size=_UNIVERSE,
            continuous=False,
            samplers={
                "sliding-window-48": {
                    "family": "sliding_window",
                    "capacity": 48,
                    "window": 256,
                }
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "interval", "low": 1, "high_fraction": 0.125},
            },
            set_system={"kind": "interval"},
            defense={
                "kind": "difference_estimator",
                "copies": 2,
                "matched_space": True,
            },
        ),
    )
)


# ----------------------------------------------------------------------
# Elastic-deployment fault scenarios (PR 8).  Fault rounds are declared as
# stream fractions so the suite's reduced-scale reruns (and the budget
# grid's fixed stream) keep the same relative timeline.  The fault plan is
# a function of the stream length alone, never of the attack budget, so
# budget monotonicity holds for the same structural reason as elsewhere.
# ----------------------------------------------------------------------

register_scenario(
    Scenario(
        name="recovery_window_strike",
        description=(
            "Greedy prefix flood timed against a crash/recovery window: one "
            "of four hash-routed reservoir sites goes down mid-stream with "
            "replay-buffered ingestion, so the coordinator merges survivors "
            "only while the adversary conditions the degraded view, then "
            "absorbs the buffered outage traffic wholesale at recovery."
        ),
        base_config=ScenarioConfig(
            name="recovery_window_strike",
            stream_length=1024,
            universe_size=_UNIVERSE,
            samplers={
                "sharded-reservoir-4x32": {"family": "reservoir", "capacity": 32}
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.25},
            },
            set_system={"kind": "prefix"},
            sharding={"sites": 4, "strategy": "hash"},
            faults={
                "crashes": [
                    {
                        "site": 1,
                        "round_fraction": 0.35,
                        "recovery_fraction": 0.25,
                        "loss": "replay",
                    }
                ]
            },
        ),
    )
)

register_scenario(
    Scenario(
        name="hotspot_split_flood",
        description=(
            "Greedy prefix flood against skewed (hotspot) routing that "
            "triggers a mid-stream reshard: the hot site absorbing ~85% of "
            "the traffic is split at half-stream by the [CTW16] "
            "hypergeometric rule, and the adversary keeps flooding the "
            "rebalanced deployment through the merged coordinator view."
        ),
        base_config=ScenarioConfig(
            name="hotspot_split_flood",
            stream_length=1024,
            universe_size=_UNIVERSE,
            samplers={
                "sharded-reservoir-4x32": {"family": "reservoir", "capacity": 32}
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.25},
            },
            set_system={"kind": "prefix"},
            sharding={
                "sites": 4,
                "strategy": {"kind": "skewed", "hot_fraction": 0.85},
            },
            faults={
                "reshards": [{"round_fraction": 0.5, "op": "split", "site": 0}]
            },
        ),
    )
)

register_scenario(
    Scenario(
        name="stale_coordinator_probe",
        description=(
            "Greedy prefix flood against a coordinator whose merged view "
            "goes stale twice mid-stream: during each staleness window the "
            "coordinator serves its memoised pre-window sample (spending no "
            "merge messages), so the adversary's feedback lags the true "
            "sharded state and its conditioning lands on the cached view."
        ),
        base_config=ScenarioConfig(
            name="stale_coordinator_probe",
            stream_length=1024,
            universe_size=_UNIVERSE,
            samplers={
                "sharded-reservoir-4x32": {"family": "reservoir", "capacity": 32}
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.25},
            },
            set_system={"kind": "prefix"},
            sharding={"sites": 4, "strategy": "hash"},
            faults={
                "stale_windows": [
                    {"round_fraction": 0.3, "duration_fraction": 0.15},
                    {"round_fraction": 0.65, "duration_fraction": 0.15},
                ]
            },
        ),
    )
)


register_scenario(
    Scenario(
        name="stale_snapshot_strike",
        description=(
            "Query-timing attack on the always-on service's staleness knob: "
            "a greedy prefix flood conditions on the *served* snapshot of a "
            "sharded deployment whose service may lag ingestion by up to 64 "
            "rounds.  The adversary's cadenced decisions land exactly when "
            "the served view is maximally stale, so its feedback describes "
            "a deployment state up to a full snapshot window old — the "
            "service-layer analogue of the stale-coordinator fault, induced "
            "by read scheduling instead of a fault plan."
        ),
        base_config=ScenarioConfig(
            name="stale_snapshot_strike",
            stream_length=1024,
            universe_size=_UNIVERSE,
            samplers={
                "sharded-reservoir-4x32": {"family": "reservoir", "capacity": 32}
            },
            adversary={
                "family": "greedy_density",
                "target": {"kind": "prefix", "bound_fraction": 0.25},
            },
            decision_period=8,
            set_system={"kind": "prefix"},
            sharding={"sites": 4, "strategy": "hash"},
            service={"staleness_rounds": 64, "clients": 2, "query_period": 32},
        ),
    )
)

register_scenario(
    Scenario(
        name="query_flood_exposure",
        description=(
            "Query-timing attack on an exposure-tracked defense: a "
            "switching-singleton strike against a sketch-switching sampler "
            "served through the query service with an aggressive background "
            "client population (4 clients reading every 4 rounds).  "
            "Exposure-tracked deployments bypass every snapshot cache, so "
            "each background read reaches the observe_exposure hook and "
            "genuinely spends the defense's switching budget — the query "
            "flood drains the defense far faster than the stream alone "
            "would, exactly the over-exposure failure mode the sketch-"
            "switching analysis warns about."
        ),
        base_config=ScenarioConfig(
            name="query_flood_exposure",
            stream_length=1024,
            universe_size=_UNIVERSE,
            samplers={"reservoir-32": {"family": "reservoir", "capacity": 32}},
            adversary={"family": "switching_singleton"},
            set_system={"kind": "prefix"},
            defense={"kind": "sketch_switching", "copies": 4},
            service={"staleness_rounds": 0, "clients": 4, "query_period": 4},
        ),
    )
)


def run_prefix_flood(**overrides: Any) -> ScenarioResult:
    """Run the ``prefix_flood`` scenario (optionally overriding config fields)."""
    return run_scenario("prefix_flood", **overrides)


def run_bisection_probe(**overrides: Any) -> ScenarioResult:
    """Run the ``bisection_probe`` scenario."""
    return run_scenario("bisection_probe", **overrides)


def run_reservoir_eviction(**overrides: Any) -> ScenarioResult:
    """Run the ``reservoir_eviction`` scenario."""
    return run_scenario("reservoir_eviction", **overrides)


def run_heavy_hitter_spoof(**overrides: Any) -> ScenarioResult:
    """Run the ``heavy_hitter_spoof`` scenario."""
    return run_scenario("heavy_hitter_spoof", **overrides)


def run_quantile_shift(**overrides: Any) -> ScenarioResult:
    """Run the ``quantile_shift`` scenario."""
    return run_scenario("quantile_shift", **overrides)


def run_sliding_window_burst(**overrides: Any) -> ScenarioResult:
    """Run the ``sliding_window_burst`` scenario."""
    return run_scenario("sliding_window_burst", **overrides)


def run_distributed_skew(**overrides: Any) -> ScenarioResult:
    """Run the ``distributed_skew`` scenario."""
    return run_scenario("distributed_skew", **overrides)


def run_shard_hotspot(**overrides: Any) -> ScenarioResult:
    """Run the ``shard_hotspot`` scenario."""
    return run_scenario("shard_hotspot", **overrides)


def run_cross_shard_skew(**overrides: Any) -> ScenarioResult:
    """Run the ``cross_shard_skew`` scenario."""
    return run_scenario("cross_shard_skew", **overrides)


def run_sharded_heavy_hitter_spoof(**overrides: Any) -> ScenarioResult:
    """Run the ``sharded_heavy_hitter_spoof`` scenario."""
    return run_scenario("sharded_heavy_hitter_spoof", **overrides)


def run_sharded_prefix_flood(**overrides: Any) -> ScenarioResult:
    """Run the ``sharded_prefix_flood`` scenario."""
    return run_scenario("sharded_prefix_flood", **overrides)


def run_sharded_sliding_window_burst(**overrides: Any) -> ScenarioResult:
    """Run the ``sharded_sliding_window_burst`` scenario."""
    return run_scenario("sharded_sliding_window_burst", **overrides)


def run_reactive_prefix_flood(**overrides: Any) -> ScenarioResult:
    """Run the ``reactive_prefix_flood`` scenario."""
    return run_scenario("reactive_prefix_flood", **overrides)


def run_cadence_probe(**overrides: Any) -> ScenarioResult:
    """Run the ``cadence_probe`` scenario."""
    return run_scenario("cadence_probe", **overrides)


def run_sharded_reactive_skew(**overrides: Any) -> ScenarioResult:
    """Run the ``sharded_reactive_skew`` scenario."""
    return run_scenario("sharded_reactive_skew", **overrides)


def run_recovery_window_strike(**overrides: Any) -> ScenarioResult:
    """Run the ``recovery_window_strike`` fault scenario."""
    return run_scenario("recovery_window_strike", **overrides)


def run_hotspot_split_flood(**overrides: Any) -> ScenarioResult:
    """Run the ``hotspot_split_flood`` fault scenario."""
    return run_scenario("hotspot_split_flood", **overrides)


def run_stale_coordinator_probe(**overrides: Any) -> ScenarioResult:
    """Run the ``stale_coordinator_probe`` fault scenario."""
    return run_scenario("stale_coordinator_probe", **overrides)


def run_spam_then_poison(**overrides: Any) -> ScenarioResult:
    """Run the ``spam_then_poison`` campaign scenario."""
    return run_scenario("spam_then_poison", **overrides)


def run_probe_then_strike(**overrides: Any) -> ScenarioResult:
    """Run the ``probe_then_strike`` campaign scenario."""
    return run_scenario("probe_then_strike", **overrides)


def run_colluding_split_budget(**overrides: Any) -> ScenarioResult:
    """Run the ``colluding_split_budget`` campaign scenario."""
    return run_scenario("colluding_split_budget", **overrides)


def run_static_baseline(**overrides: Any) -> ScenarioResult:
    """Run the ``static_baseline`` scenario."""
    return run_scenario("static_baseline", **overrides)


def run_oversample_defense(**overrides: Any) -> ScenarioResult:
    """Run the ``oversample_defense`` scenario."""
    return run_scenario("oversample_defense", **overrides)


def run_sketch_switching_defense(**overrides: Any) -> ScenarioResult:
    """Run the ``sketch_switching_defense`` scenario."""
    return run_scenario("sketch_switching_defense", **overrides)


def run_dp_aggregate_defense(**overrides: Any) -> ScenarioResult:
    """Run the ``dp_aggregate_defense`` scenario."""
    return run_scenario("dp_aggregate_defense", **overrides)


def run_difference_estimator_defense(**overrides: Any) -> ScenarioResult:
    """Run the ``difference_estimator_defense`` scenario."""
    return run_scenario("difference_estimator_defense", **overrides)


def run_stale_snapshot_strike(**overrides: Any) -> ScenarioResult:
    """Run the ``stale_snapshot_strike`` query-timing scenario."""
    return run_scenario("stale_snapshot_strike", **overrides)


def run_query_flood_exposure(**overrides: Any) -> ScenarioResult:
    """Run the ``query_flood_exposure`` query-timing scenario."""
    return run_scenario("query_flood_exposure", **overrides)
