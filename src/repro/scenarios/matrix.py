"""Attack × defense results matrix.

Runs every requested scenario under every requested defense and tabulates
``attacked_peak_discrepancy`` — the worst in-attack-window checkpoint error
(final-state error for endpoint scenarios).  One axis is the registry's
attack scenarios, the other is :data:`DEFENSE_GRID`, the canonical defense
configurations (the three replication wrappers at matched total space, plus
Theorem 1.2 oversampling and the undefended baseline).

Cells where a defense does not apply — e.g. the difference estimator on a
scenario with no sliding-window sampler — render as ``n/a`` with the
:class:`~repro.exceptions.ConfigurationError` message preserved, instead of
aborting the whole matrix.

The CLI surfaces this as ``repro-experiments scenario matrix``
(``--json`` / ``--markdown``); the README's attack-vs-defense table is
rendered from exactly this code path.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from collections.abc import Iterable
from typing import Any

from ..exceptions import ConfigurationError
from .engine import ScenarioResult
from .registry import SCENARIOS, get_scenario, run_scenario

__all__ = [
    "DEFENSE_GRID",
    "MatrixCell",
    "MatrixResult",
    "run_matrix",
]

#: Canonical defense column set: label -> ``ScenarioConfig.defense`` block.
#: The replication defenses run two copies at matched total space, so every
#: column of the matrix spends the same element budget as the undefended
#: baseline; ``oversample`` is the Theorem-1.2 comparison point and is the
#: one column that spends extra space (factor 4).
DEFENSE_GRID: dict[str, dict[str, Any] | None] = {
    "none": None,
    "oversample": {"kind": "oversample", "factor": 4},
    "sketch_switching": {"kind": "sketch_switching", "copies": 2, "matched_space": True},
    "dp_aggregate": {"kind": "dp_aggregate", "copies": 2, "matched_space": True},
    "difference_estimator": {
        "kind": "difference_estimator",
        "copies": 2,
        "matched_space": True,
    },
}


@dataclass(frozen=True)
class MatrixCell:
    """One (scenario, defense) cell of the matrix."""

    scenario: str
    defense: str
    #: Peak discrepancy inside the attack window; ``None`` when no checkpoint
    #: fell inside it, or when the cell is not applicable.
    attacked_peak_discrepancy: float | None = None
    #: Overall peak discrepancy (all checkpoints), for context.
    peak_discrepancy: float | None = None
    #: Grid cells of the underlying run whose attacked peak was undefined.
    undefined_cells: int = 0
    #: ``ConfigurationError`` message when the defense does not apply.
    error: str | None = None

    @property
    def applicable(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "defense": self.defense,
            "attacked_peak_discrepancy": self.attacked_peak_discrepancy,
            "peak_discrepancy": self.peak_discrepancy,
            "undefined_cells": self.undefined_cells,
            "error": self.error,
        }


@dataclass
class MatrixResult:
    """The full attack × defense grid plus rendering helpers."""

    scenarios: list[str]
    defenses: list[str]
    cells: dict[tuple[str, str], MatrixCell]
    wall_time_seconds: float = 0.0
    overrides: dict[str, Any] = field(default_factory=dict)

    def cell(self, scenario: str, defense: str) -> MatrixCell:
        return self.cells[(scenario, defense)]

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenarios": list(self.scenarios),
            "defenses": list(self.defenses),
            "overrides": dict(self.overrides),
            "wall_time_seconds": self.wall_time_seconds,
            "cells": [
                self.cells[(scenario, defense)].to_dict()
                for scenario in self.scenarios
                for defense in self.defenses
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def _rendered_cell(self, scenario: str, defense: str) -> str:
        cell = self.cells[(scenario, defense)]
        if not cell.applicable:
            return "n/a"
        if cell.attacked_peak_discrepancy is None:
            return "—"
        return f"{cell.attacked_peak_discrepancy:.3f}"

    def to_markdown(self) -> str:
        header = "| scenario | " + " | ".join(self.defenses) + " |"
        divider = "|" + "---|" * (len(self.defenses) + 1)
        rows = [
            "| "
            + " | ".join(
                [scenario]
                + [self._rendered_cell(scenario, defense) for defense in self.defenses]
            )
            + " |"
            for scenario in self.scenarios
        ]
        return "\n".join([header, divider, *rows])

    def to_text(self) -> str:
        width = max(len("scenario"), *(len(name) for name in self.scenarios))
        columns = [max(len(d), 7) for d in self.defenses]
        lines = [
            "scenario".ljust(width)
            + "  "
            + "  ".join(d.rjust(w) for d, w in zip(self.defenses, columns))
        ]
        for scenario in self.scenarios:
            lines.append(
                scenario.ljust(width)
                + "  "
                + "  ".join(
                    self._rendered_cell(scenario, defense).rjust(w)
                    for defense, w in zip(self.defenses, columns)
                )
            )
        return "\n".join(lines)


def run_matrix(
    scenarios: Iterable[str] | None = None,
    defenses: Iterable[str] | None = None,
    **overrides: Any,
) -> MatrixResult:
    """Run the attack × defense grid.

    Parameters
    ----------
    scenarios:
        Scenario names (default: every registered scenario).
    defenses:
        Defense column labels from :data:`DEFENSE_GRID` (default: all).
    overrides:
        Config-field overrides applied to every cell, exactly as
        :func:`~repro.scenarios.registry.run_scenario` accepts them —
        ``trials=2, stream_length=256`` bounds a CI smoke run.

    Scenarios that carry their own ``defense`` block (the ``*_defense``
    library entries) are still re-run under each column: the column's block
    *replaces* theirs, so the matrix stays a function of (attack, defense)
    only.
    """
    scenario_names = [get_scenario(name).name for name in scenarios] if scenarios else list(SCENARIOS)
    if defenses is None:
        defense_names = list(DEFENSE_GRID)
    else:
        defense_names = []
        for label in defenses:
            key = label.strip().lower()
            if key not in DEFENSE_GRID:
                raise ConfigurationError(
                    f"unknown defense column {label!r}; "
                    f"available: {', '.join(DEFENSE_GRID)}"
                )
            defense_names.append(key)
    started = time.perf_counter()  # repro: noqa[DET001]: wall-time reporting only; never feeds matrix cell results
    cells: dict[tuple[str, str], MatrixCell] = {}
    for scenario in scenario_names:
        for defense in defense_names:
            try:
                result: ScenarioResult = run_scenario(
                    scenario, defense=DEFENSE_GRID[defense], **overrides
                )
            except ConfigurationError as exc:
                cells[(scenario, defense)] = MatrixCell(
                    scenario=scenario, defense=defense, error=str(exc)
                )
                continue
            cells[(scenario, defense)] = MatrixCell(
                scenario=scenario,
                defense=defense,
                attacked_peak_discrepancy=result.attacked_peak_discrepancy,
                peak_discrepancy=result.peak_discrepancy,
                undefined_cells=result.attacked_peak_undefined_cells,
            )
    return MatrixResult(
        scenarios=scenario_names,
        defenses=defense_names,
        cells=cells,
        wall_time_seconds=time.perf_counter() - started,  # repro: noqa[DET001]: wall-time reporting only; never feeds matrix cell results
        overrides=dict(overrides),
    )
