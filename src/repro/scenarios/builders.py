"""Turn declarative scenario specs into live game objects.

Every builder here consumes the plain-data specs of
:class:`~repro.scenarios.config.ScenarioConfig` and produces the objects the
game layer expects.  Two design constraints shape the module:

* **Picklability** — the factories handed to
  :class:`~repro.adversary.batch.BatchGameRunner` must cross process
  boundaries, so they are module-level classes carrying only plain data
  (:class:`SamplerFromSpec`, :class:`AdversaryFromSpec`), never closures.
* **Budget-independent attack prefixes** — :class:`BudgetedAdversary` wraps
  the attack adversary without telling it the budget, and forwards sampler
  feedback only for attack rounds, so two runs that differ only in budget
  play byte-identical games up to the smaller attack horizon.
"""

from __future__ import annotations

import copy
from collections.abc import Callable, Mapping, Sequence
from typing import Any

import numpy as np

from ..adversary import (
    Adversary,
    CampaignAdversary,
    apply_decision_period,
    phase_start_rounds,
    BisectionAdversary,
    EvictionChaserAdversary,
    GreedyDensityAdversary,
    MedianAttackAdversary,
    MixingGreedyDensityAdversary,
    SortedAdversary,
    SwitchingSingletonAdversary,
    ThresholdAttackAdversary,
    UniformAdversary,
    ZipfAdversary,
)
from ..distributed import DistributedReservoirSampler, ShardedSampler
from ..distributed.faults import compile_fault_spec
from ..exceptions import ConfigurationError
from ..samplers import (
    BernoulliSampler,
    ReservoirSampler,
    SlidingWindowSampler,
    StreamSampler,
    WeightedReservoirSampler,
)
from ..samplers.base import SampleUpdate, UpdateBatch
from ..setsystems import (
    ContinuousPrefixSystem,
    HalfspaceSystem,
    Interval,
    IntervalSystem,
    PrefixSystem,
    RectangleSystem,
    SetSystem,
    Singleton,
    SingletonSystem,
)
from ..setsystems.base import Range
from ..setsystems.intervals import Prefix
from .config import ScenarioConfig

__all__ = [
    "AdversaryFromSpec",
    "BudgetedAdversary",
    "CADENCED_ADVERSARY_FAMILIES",
    "MERGEABLE_SAMPLER_FAMILIES",
    "SamplerFromSpec",
    "build_adversary",
    "build_benign_supplier",
    "build_campaign_adversary",
    "build_defended_sampler",
    "build_sampler",
    "build_set_system",
    "build_target_range",
    "matched_space_spec",
    "oversampled_spec",
]


def _require(spec: Mapping[str, Any], field: str, context: str) -> Any:
    if field not in spec:
        raise ConfigurationError(f"{context} spec {dict(spec)!r} needs a {field!r} field")
    return spec[field]


def _reject_unknown(spec: Mapping[str, Any], allowed: set[str], context: str) -> None:
    unknown = set(spec) - allowed
    if unknown:
        raise ConfigurationError(
            f"unknown fields in {context} spec: {', '.join(sorted(unknown))}"
        )


# ----------------------------------------------------------------------
# Set systems
# ----------------------------------------------------------------------
def build_set_system(spec: Mapping[str, Any], universe_size: int) -> SetSystem:
    """Instantiate the set system named by ``spec`` (``kind`` + parameters).

    ``universe_size`` is the scenario-level default for the discrete ordered
    systems; a spec may override it with its own ``universe_size`` field.
    """
    kind = _require(spec, "kind", "set_system")
    size = int(spec.get("universe_size", universe_size))
    if kind == "prefix":
        _reject_unknown(spec, {"kind", "universe_size"}, "set_system")
        return PrefixSystem(size)
    if kind == "interval":
        _reject_unknown(spec, {"kind", "universe_size"}, "set_system")
        return IntervalSystem(size)
    if kind == "singleton":
        _reject_unknown(spec, {"kind", "universe_size"}, "set_system")
        return SingletonSystem(size)
    if kind == "continuous_prefix":
        _reject_unknown(spec, {"kind", "low", "high"}, "set_system")
        return ContinuousPrefixSystem(float(spec.get("low", 0.0)), float(spec.get("high", 1.0)))
    if kind == "rectangle":
        _reject_unknown(spec, {"kind", "side", "dimension", "seed"}, "set_system")
        return RectangleSystem(
            int(_require(spec, "side", "set_system")),
            int(_require(spec, "dimension", "set_system")),
            seed=int(spec.get("seed", 0)),
        )
    if kind == "halfspace":
        _reject_unknown(spec, {"kind", "side", "dimension", "directions", "seed"}, "set_system")
        return HalfspaceSystem(
            int(_require(spec, "side", "set_system")),
            int(_require(spec, "dimension", "set_system")),
            directions=int(spec.get("directions", 32)),
            seed=int(spec.get("seed", 0)),
        )
    raise ConfigurationError(f"unknown set system kind {kind!r}")


# ----------------------------------------------------------------------
# Target ranges (for the range-directed attacks)
# ----------------------------------------------------------------------
def _resolve_point(
    spec: Mapping[str, Any], field: str, universe_size: int, default: Any = None
) -> Any:
    """Resolve an endpoint given either absolutely or as a universe fraction.

    ``{"bound": 64}`` is absolute; ``{"bound_fraction": 0.25}`` scales with
    the scenario universe, which keeps registered scenarios meaningful when
    tests (or sweeps) shrink ``universe_size``.
    """
    if field in spec:
        return spec[field]
    fraction_field = f"{field}_fraction"
    if fraction_field in spec:
        fraction = float(spec[fraction_field])
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"target {fraction_field} must lie in (0, 1], got {fraction}"
            )
        return max(1, int(universe_size * fraction))
    if default is not None:
        return default
    raise ConfigurationError(
        f"target spec {dict(spec)!r} needs {field!r} or {fraction_field!r}"
    )


def build_target_range(spec: Mapping[str, Any], universe_size: int) -> Range:
    """Instantiate the range named by a ``target`` spec.

    Endpoints may be absolute (``bound``, ``low``, ``high``, ``value``) or
    universe-relative (``bound_fraction`` etc.; see :func:`_resolve_point`).
    """
    kind = _require(spec, "kind", "target")
    if kind == "prefix":
        return Prefix(_resolve_point(spec, "bound", universe_size))
    if kind == "interval":
        return Interval(
            _resolve_point(spec, "low", universe_size, default=1),
            _resolve_point(spec, "high", universe_size),
        )
    if kind == "singleton":
        return Singleton(_resolve_point(spec, "value", universe_size))
    raise ConfigurationError(f"unknown target range kind {kind!r}")


def _target_elements(
    spec: Mapping[str, Any], target: Range, universe_size: int
) -> tuple[Any, Any]:
    """Derive (in-range, out-of-range) elements for a range-directed attack."""
    in_element = spec.get("in_element")
    out_element = spec.get("out_element")
    kind = _require(spec, "kind", "target")
    if in_element is None:
        if kind == "prefix":
            in_element = int(_resolve_point(spec, "bound", universe_size))
        elif kind == "interval":
            in_element = int(_resolve_point(spec, "low", universe_size, default=1))
        else:
            in_element = int(_resolve_point(spec, "value", universe_size))
    if out_element is None:
        out_element = int(universe_size)
    if in_element not in target:
        raise ConfigurationError(f"in_element {in_element!r} lies outside the target range")
    if out_element in target:
        raise ConfigurationError(f"out_element {out_element!r} lies inside the target range")
    return in_element, out_element


# ----------------------------------------------------------------------
# Samplers
# ----------------------------------------------------------------------
def build_sampler(
    spec: Mapping[str, Any], rng: np.random.Generator
) -> StreamSampler:
    """Instantiate the sampler named by ``spec`` (``family`` + parameters)."""
    family = _require(spec, "family", "sampler")
    if family == "bernoulli":
        _reject_unknown(spec, {"family", "probability"}, "sampler")
        return BernoulliSampler(float(_require(spec, "probability", "sampler")), seed=rng)
    if family == "reservoir":
        _reject_unknown(spec, {"family", "capacity", "eviction"}, "sampler")
        return ReservoirSampler(
            int(_require(spec, "capacity", "sampler")),
            seed=rng,
            eviction=spec.get("eviction", "uniform"),
        )
    if family == "sliding_window":
        _reject_unknown(spec, {"family", "capacity", "window"}, "sampler")
        return SlidingWindowSampler(
            int(_require(spec, "capacity", "sampler")),
            int(_require(spec, "window", "sampler")),
            seed=rng,
        )
    if family == "weighted_reservoir":
        _reject_unknown(spec, {"family", "capacity"}, "sampler")
        return WeightedReservoirSampler(int(_require(spec, "capacity", "sampler")), seed=rng)
    if family == "distributed_reservoir":
        _reject_unknown(spec, {"family", "sites", "capacity"}, "sampler")
        return DistributedReservoirSampler(
            int(_require(spec, "sites", "sampler")),
            int(_require(spec, "capacity", "sampler")),
            seed=rng,
        )
    raise ConfigurationError(f"unknown sampler family {family!r}")


#: Sampler families whose summaries implement
#: :class:`~repro.samplers.base.Mergeable` and can therefore be sharded.
MERGEABLE_SAMPLER_FAMILIES = ("bernoulli", "reservoir", "sliding_window")

#: Spec field each family scales when a defense trades space: the knob
#: oversampling multiplies and ``matched_space`` divides.
_SPACE_FIELDS = {
    "bernoulli": "probability",
    "reservoir": "capacity",
    "sliding_window": "capacity",
    "weighted_reservoir": "capacity",
    "distributed_reservoir": "capacity",
}


def _space_field(spec: Mapping[str, Any], context: str) -> str:
    family = _require(spec, "family", "sampler")
    try:
        return _SPACE_FIELDS[family]
    except KeyError:
        raise ConfigurationError(
            f"sampler family {family!r} declares no space knob; {context} "
            f"applies to: {', '.join(sorted(_SPACE_FIELDS))}"
        ) from None


def oversampled_spec(spec: Mapping[str, Any], factor: float) -> dict[str, Any]:
    """Theorem 1.2's defense as a spec rewrite: scale the space knob up.

    ``k -> round(factor * k)`` for capacity families,
    ``p -> min(1, factor * p)`` for Bernoulli.  The result builds the exact
    sampler an explicitly oversized spec would — the defense axis merely
    *names* the space trade so the matrix can compare it against the
    wrapper defenses at equal budget.
    """
    spec = dict(spec)
    field = _space_field(spec, "oversampling")
    value = _require(spec, field, "sampler")
    if field == "probability":
        spec[field] = min(1.0, float(value) * factor)
    else:
        spec[field] = int(round(int(value) * factor))
    return spec


def matched_space_spec(spec: Mapping[str, Any], copies: int) -> dict[str, Any]:
    """Per-copy spec occupying a ``copies``-th of the original space.

    ``k -> max(1, k // copies)`` / ``p -> p / copies``, so ``copies``
    replicas together match the undefended sampler's footprint — the honest
    baseline for "does the defense help at equal total space?".
    """
    spec = dict(spec)
    field = _space_field(spec, "matched_space")
    value = _require(spec, field, "sampler")
    if field == "probability":
        spec[field] = float(value) / copies
    else:
        spec[field] = max(1, int(value) // copies)
    return spec


def build_defended_sampler(
    spec: Mapping[str, Any], defense: Mapping[str, Any], rng: np.random.Generator
) -> StreamSampler:
    """Wrap the sampler family in the replicated defense named by ``defense``.

    The block is assumed validated (``ScenarioConfig`` runs
    ``_validate_defense``); ``oversample`` never reaches here — it is a spec
    rewrite handled in :class:`SamplerFromSpec`.
    """
    from ..defenses import (
        DifferenceEstimatorSampler,
        DPAggregateSampler,
        SketchSwitchingSampler,
    )

    kind = _require(defense, "kind", "defense")
    copies = int(defense.get("copies", 4))
    inner = dict(spec)
    if defense.get("matched_space"):
        inner = matched_space_spec(inner, copies)
    factory = SamplerFromSpec(inner)
    if kind == "sketch_switching":
        return SketchSwitchingSampler(
            factory, copies=copies, growth=float(defense.get("growth", 2.0)), seed=rng
        )
    if kind == "dp_aggregate":
        return DPAggregateSampler(
            factory,
            copies=copies,
            dp_epsilon=float(defense.get("dp_epsilon", 1.0)),
            seed=rng,
        )
    if kind == "difference_estimator":
        window = int(_require(spec, "window", "sampler"))
        rotation_fraction = float(defense.get("rotation_fraction", 1.0))
        return DifferenceEstimatorSampler(
            factory,
            copies=copies,
            rotation_period=max(1, int(round(rotation_fraction * window))),
            seed=rng,
        )
    raise ConfigurationError(f"unknown defense kind {kind!r}")


class SamplerFromSpec:
    """Picklable ``SamplerFactory`` closing over nothing but plain data.

    With a ``sharding`` spec (the scenario-level ``sharding`` block) the
    factory wraps the sampler family in a
    :class:`~repro.distributed.sharded.ShardedSampler`: ``sites`` per-site
    copies of the same spec, routed by the named strategy, observed through
    the merged view.  Only mergeable families can be sharded; the reservoir
    ablation evictions are rejected by the merge itself.

    With a ``defense`` spec (the scenario-level ``defense`` block) the
    sampler is robustified: ``oversample`` is resolved immediately as a spec
    rewrite (the built sampler is byte-identical to an explicitly oversized
    spec), the replicated kinds wrap the built sampler via
    :func:`build_defended_sampler`.  Defense composes *inside* sharding —
    each site is an independently defended sampler, so the coordinator's
    copy-wise merge sees ``sites`` defended views, exactly the deployment
    the [BJWY20]/[HKMMS20] wrappers are meant for.

    With a ``faults`` spec (the scenario-level ``faults`` block, requires
    ``sharding``) the deployment is built with a
    :class:`~repro.distributed.faults.FaultPlan` compiled against the
    scenario's ``stream_length`` — fraction-based round knobs are resolved
    here, at build time, so the factory stays plain data and the schedule
    rescales with the stream.

    With a ``service`` spec (the scenario-level ``service`` block) the
    fully built sampler — sharded, defended, faulted or plain — is placed
    behind the always-on query service facade
    (:class:`~repro.service.served.ServedSampler`): the game observes the
    bounded-stale served snapshot, and the configured background clients
    read on their round-indexed schedule.  Service wraps *outermost*, which
    is the deployment the ROADMAP describes: one service endpoint in front
    of the whole coordinator.
    """

    def __init__(
        self,
        spec: Mapping[str, Any],
        sharding: Mapping[str, Any] | None = None,
        defense: Mapping[str, Any] | None = None,
        faults: Mapping[str, Any] | None = None,
        stream_length: int | None = None,
        service: Mapping[str, Any] | None = None,
    ) -> None:
        self.spec = dict(spec)
        self.sharding = None if sharding is None else dict(sharding)
        self.defense = None if defense is None else copy.deepcopy(dict(defense))
        self.faults = None if faults is None else copy.deepcopy(dict(faults))
        self.stream_length = None if stream_length is None else int(stream_length)
        self.service = None if service is None else copy.deepcopy(dict(service))
        family = _require(self.spec, "family", "sampler")
        if self.defense is not None:
            kind = _require(self.defense, "kind", "defense")
            if kind == "oversample":
                self.spec = oversampled_spec(self.spec, float(self.defense.get("factor", 4)))
                self.defense = None
            else:
                # Fail at configuration time, not inside a worker process.
                _space_field(self.spec, f"the {kind} defense")
                if kind == "difference_estimator" and family != "sliding_window":
                    raise ConfigurationError(
                        "the difference-estimator defense only applies to the "
                        f"sliding_window family, got {family!r}"
                    )
        if self.sharding is not None:
            if family not in MERGEABLE_SAMPLER_FAMILIES:
                raise ConfigurationError(
                    f"sampler family {family!r} is not mergeable and cannot be "
                    f"sharded; mergeable families: {', '.join(MERGEABLE_SAMPLER_FAMILIES)}"
                )
        if self.faults is not None:
            if self.sharding is None:
                raise ConfigurationError(
                    "a faults spec requires a sharding spec"
                )
            if self.stream_length is None:
                raise ConfigurationError(
                    "a faults spec needs the scenario stream_length to resolve "
                    "its round fractions"
                )
            # Fail at configuration time, not inside a worker process.
            compile_fault_spec(self.faults, self.stream_length)

    def __call__(self, rng: np.random.Generator) -> StreamSampler:
        sampler = self._build_inner(rng)
        if self.service is not None:
            from ..service.served import ServedSampler

            sampler = ServedSampler(sampler, **self.service)
        return sampler

    def _build_inner(self, rng: np.random.Generator) -> StreamSampler:
        if self.sharding is not None:
            fault_plan = None
            if self.faults is not None:
                fault_plan = compile_fault_spec(self.faults, self.stream_length)
            return ShardedSampler(
                int(self.sharding["sites"]),
                SamplerFromSpec(self.spec, defense=self.defense),
                strategy=self.sharding.get("strategy"),
                seed=rng,
                fault_plan=fault_plan,
            )
        if self.defense is not None:
            return build_defended_sampler(self.spec, self.defense, rng)
        return build_sampler(self.spec, rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [repr(self.spec)]
        if self.sharding is not None:
            parts.append(f"sharding={self.sharding!r}")
        if self.defense is not None:
            parts.append(f"defense={self.defense!r}")
        if self.faults is not None:
            parts.append(f"faults={self.faults!r}")
        if self.service is not None:
            parts.append(f"service={self.service!r}")
        return f"SamplerFromSpec({', '.join(parts)})"


# ----------------------------------------------------------------------
# Adversaries
# ----------------------------------------------------------------------
#: Adversary families that implement the decision-cadence protocol and
#: therefore accept a spec-level ``decision_period``.  The remaining
#: families (``uniform``, ``sorted``, ``zipf``) are oblivious: they have no
#: decision points to space out, so only the lenient scenario-level knob may
#: be applied to them (and is ignored).
CADENCED_ADVERSARY_FAMILIES = (
    "bisection",
    "eviction_chaser",
    "figure3",
    "greedy_density",
    "median_attack",
    "switching_singleton",
)


def build_adversary(
    spec: Mapping[str, Any],
    rng: np.random.Generator,
    stream_length: int,
    universe_size: int,
    decision_period: int | None = None,
    context: str | None = None,
) -> Adversary:
    """Instantiate the attack adversary named by ``spec``.

    ``decision_period`` is the scenario-level cadence default
    (:attr:`~repro.scenarios.config.ScenarioConfig.decision_period`); a
    ``decision_period`` field inside the spec overrides it.  A spec-level
    cadence on a family that declares none (the oblivious families) is a
    configuration error; the scenario-level knob is lenient — oblivious
    adversaries have no decision points to space out and simply ignore it.
    ``context`` names the spec's position in error messages (a campaign
    passes ``"campaign member #i (<label>)"`` so a mixed oblivious/cadenced
    roster pinpoints the offending member).
    """
    spec = dict(spec)
    spec_period = spec.pop("decision_period", None)
    period = spec_period if spec_period is not None else decision_period
    adversary = _build_adversary_inner(spec, rng, stream_length, universe_size)
    if period is not None:
        applied = apply_decision_period(adversary, int(period))
        if not applied and spec_period is not None:
            where = f"{context}: " if context else ""
            raise ConfigurationError(
                f"{where}adversary family {spec.get('family')!r} (spec {spec!r}) "
                "declares no decision cadence, so its spec-level "
                f"'decision_period': {spec_period} cannot apply; remove "
                "'decision_period' from this spec (the scenario-level knob is "
                "ignored by oblivious families) or switch to a cadence-aware "
                f"family: {', '.join(CADENCED_ADVERSARY_FAMILIES)}"
            )
    return adversary


def build_campaign_adversary(
    campaign: Mapping[str, Any],
    rng: np.random.Generator,
    stream_length: int,
    universe_size: int,
    decision_period: int | None = None,
) -> CampaignAdversary:
    """Compile a validated ``campaign`` block into a :class:`CampaignAdversary`.

    Members are built in roster order through :func:`build_adversary`
    (sharing ``rng``, so construction-time draws are deterministic), each
    with the lenient scenario-level ``decision_period`` and an error context
    naming its position and label.  Phased start fractions resolve to round
    boundaries via the same :func:`~repro.adversary.campaign.phase_start_rounds`
    the config validation uses, so compilation cannot disagree with what was
    validated.
    """
    members = []
    for index, member in enumerate(campaign["members"]):
        label = member.get("label") or str(member["adversary"].get("family"))
        members.append(
            build_adversary(
                member["adversary"],
                rng,
                stream_length,
                universe_size,
                decision_period=decision_period,
                context=f"campaign member #{index} ({label})",
            )
        )
    mode = campaign.get("mode", "phased")
    if mode == "phased":
        starts = [float(member.get("start", 0.0)) for member in campaign["members"]]
        return CampaignAdversary(
            members,
            mode="phased",
            phase_starts=phase_start_rounds(starts, stream_length),
        )
    return CampaignAdversary(
        members, mode="interleaved", stride=int(campaign.get("stride", 16))
    )


def _build_adversary_inner(
    spec: Mapping[str, Any],
    rng: np.random.Generator,
    stream_length: int,
    universe_size: int,
) -> Adversary:
    family = _require(spec, "family", "adversary")
    if family == "uniform":
        return UniformAdversary(int(spec.get("universe_size", universe_size)), seed=rng)
    if family == "sorted":
        # Defaults to the scenario universe like the sibling families; a
        # stream longer than the universe then fails loudly
        # (StreamExhaustedError) instead of silently leaving the declared
        # universe.  Pass an explicit null to opt into the unbounded stream.
        if "universe_size" in spec:
            return SortedAdversary(spec["universe_size"])
        return SortedAdversary(universe_size)
    if family == "zipf":
        return ZipfAdversary(
            int(spec.get("universe_size", universe_size)),
            exponent=float(spec.get("exponent", 1.2)),
            seed=rng,
        )
    if family == "greedy_density":
        target_spec = _require(spec, "target", "adversary")
        target = build_target_range(target_spec, universe_size)
        in_element, out_element = _target_elements(target_spec, target, universe_size)
        # The mixing variant is the scenario default: the plain greedy
        # strategy is degenerate from a cold start (gap pinned at zero).
        adversary_cls = (
            MixingGreedyDensityAdversary
            if bool(spec.get("mixing", True))
            else GreedyDensityAdversary
        )
        return adversary_cls(
            target, in_element, out_element, widen=bool(spec.get("widen", True))
        )
    if family == "eviction_chaser":
        target_spec = _require(spec, "target", "adversary")
        target = build_target_range(target_spec, universe_size)
        in_element, out_element = _target_elements(target_spec, target, universe_size)
        return EvictionChaserAdversary(
            target,
            in_element,
            out_element,
            reservoir_size=int(_require(spec, "reservoir_size", "adversary")),
            switch_threshold=float(spec.get("switch_threshold", 0.5)),
        )
    if family == "median_attack":
        return MedianAttackAdversary(
            stream_length, universe_size=int(spec.get("universe_size", universe_size))
        )
    if family == "bisection":
        return BisectionAdversary(float(spec.get("low", 0.0)), float(spec.get("high", 1.0)))
    if family == "switching_singleton":
        return SwitchingSingletonAdversary(
            int(spec.get("universe_size", universe_size)),
            revisit_evicted=bool(spec.get("revisit_evicted", False)),
        )
    if family == "figure3":
        mode = spec.get("mode", "reservoir")
        if mode == "bernoulli":
            return ThresholdAttackAdversary.for_bernoulli(
                float(_require(spec, "probability", "adversary")),
                stream_length,
                universe_size=spec.get("universe_size"),
            )
        if mode == "reservoir":
            return ThresholdAttackAdversary.for_reservoir(
                int(_require(spec, "capacity", "adversary")),
                stream_length,
                universe_size=spec.get("universe_size"),
            )
        raise ConfigurationError(f"unknown figure3 mode {mode!r}")
    raise ConfigurationError(f"unknown adversary family {family!r}")


def build_benign_supplier(
    spec: Mapping[str, Any] | None,
    rng: np.random.Generator,
    universe_size: int,
) -> Callable[[], Any]:
    """Return a zero-argument supplier of benign filler elements.

    ``None`` defaults to uniform integers over the scenario universe, the
    neutral workload every discrete system accepts.
    """
    if spec is None:
        spec = {"kind": "uniform_int"}
    kind = _require(spec, "kind", "benign")
    if kind == "uniform_int":
        low = int(spec.get("low", 1))
        high = int(spec.get("high", universe_size))
        if low > high:
            raise ConfigurationError(f"benign range [{low}, {high}] is empty")
        return lambda: int(rng.integers(low, high + 1))
    if kind == "uniform_float":
        low = float(spec.get("low", 0.0))
        high = float(spec.get("high", 1.0))
        if not low < high:
            raise ConfigurationError(f"benign range [{low}, {high}] is empty")
        return lambda: float(rng.uniform(low, high))
    if kind == "constant":
        value = _require(spec, "value", "benign")
        return lambda: value
    raise ConfigurationError(f"unknown benign spec kind {kind!r}")


class BudgetedAdversary(Adversary):
    """Play an attack for the first ``attack_rounds`` rounds, then go benign.

    The wrapper never reveals the budget to the inner attack, and sampler
    feedback is forwarded only for attack rounds, so the inner adversary's
    decisions over the shared prefix are identical across budgets — the
    property the scenario monotonicity checks rely on.
    """

    def __init__(
        self,
        inner: Adversary,
        benign: Callable[[], Any],
        attack_rounds: int,
    ) -> None:
        if attack_rounds < 0:
            raise ConfigurationError(f"attack rounds must be >= 0, got {attack_rounds}")
        self.inner = inner
        self.attack_rounds = int(attack_rounds)
        self._benign = benign
        self.name = inner.name

    def next_element(
        self, round_index: int, observed_sample: Sequence[Any] | None
    ) -> Any:
        if round_index <= self.attack_rounds:
            return self.inner.next_element(round_index, observed_sample)
        return self._benign()

    def next_elements(
        self, round_index: int, count: int, observed_sample: Sequence[Any] | None
    ) -> list[Any]:
        """Segment at the attack/benign boundary — the only decision point
        the wrapper itself adds.

        During the attack window the inner adversary's own granularity
        applies (one element per segment for fully adaptive attacks, whole
        segments for oblivious ones), capped at the boundary; the benign tail
        commits to whole segments, with the supplier called once per round in
        order so seeded streams match the per-round game bit for bit.
        """
        if round_index <= self.attack_rounds:
            budget = min(count, self.attack_rounds - round_index + 1)
            return self.inner.next_elements(round_index, budget, observed_sample)
        return [self._benign() for _ in range(count)]

    def observe_update(self, update: SampleUpdate) -> None:
        if update.round_index <= self.attack_rounds:
            self.inner.observe_update(update)

    def observe_update_batch(self, updates: Sequence[SampleUpdate]) -> None:
        if len(updates) == 0:
            return
        if isinstance(updates, UpdateBatch):
            # Round indices ascend within a segment, so the attack-window
            # records are a prefix; slicing keeps the record columnar.
            live = int(np.searchsorted(updates.round_indices, self.attack_rounds, side="right"))
            if live:
                self.inner.observe_update_batch(updates[:live] if live < len(updates) else updates)
            return
        for update in updates:
            if update.round_index <= self.attack_rounds:
                self.inner.observe_update(update)

    def observes_updates(self, first_round: int, last_round: int) -> bool:
        return first_round <= self.attack_rounds and self.inner.observes_updates(
            first_round, min(last_round, self.attack_rounds)
        )

    @property
    def uses_observed_sample(self) -> bool:  # type: ignore[override]
        # The benign tail never reads the sample, so the wrapper's appetite
        # is exactly the inner attack's — which lets the game runner skip
        # materialising the (possibly merged) sample for update-driven
        # attacks even when budget-wrapped.
        return self.inner.uses_observed_sample

    def will_observe_sample(self) -> bool:
        return self.inner.will_observe_sample()

    def set_decision_period(self, decision_period: int) -> bool:
        """Forward a cadence re-declaration to the inner attack."""
        return apply_decision_period(self.inner, decision_period)

    def reset(self) -> None:
        self.inner.reset()


class AdversaryFromSpec:
    """Picklable ``AdversaryFactory``: budget wrapper around an attack spec.

    With a ``campaign`` block on the config the inner attack is the compiled
    :class:`~repro.adversary.campaign.CampaignAdversary` instead of a single
    family; the budget wrapper is identical either way, so campaigns inherit
    the budget-independent attack prefix (and with it budget monotonicity)
    for free.
    """

    def __init__(self, config: ScenarioConfig) -> None:
        self.attack_spec = dict(config.adversary)
        self.campaign_spec = (
            None if config.campaign is None else copy.deepcopy(config.campaign)
        )
        self.benign_spec = None if config.benign is None else dict(config.benign)
        self.attack_rounds = config.attack_rounds
        self.stream_length = config.stream_length
        self.universe_size = config.universe_size
        self.decision_period = config.decision_period

    def __call__(self, rng: np.random.Generator) -> Adversary:
        if self.campaign_spec is not None:
            inner: Adversary = build_campaign_adversary(
                self.campaign_spec,
                rng,
                self.stream_length,
                self.universe_size,
                decision_period=self.decision_period,
            )
        else:
            inner = build_adversary(
                self.attack_spec,
                rng,
                self.stream_length,
                self.universe_size,
                decision_period=self.decision_period,
            )
        benign = build_benign_supplier(self.benign_spec, rng, self.universe_size)
        return BudgetedAdversary(inner, benign, self.attack_rounds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.campaign_spec is not None:
            return (
                f"AdversaryFromSpec(campaign={self.campaign_spec!r}, "
                f"attack_rounds={self.attack_rounds})"
            )
        return (
            f"AdversaryFromSpec({self.attack_spec!r}, "
            f"attack_rounds={self.attack_rounds})"
        )
