"""Registry of named attack scenarios.

Mirrors :mod:`repro.experiments.registry` one layer up: where E1–E14 are the
paper's fixed experiments, scenarios are open-ended named workloads
(:mod:`repro.scenarios.library` registers the built-in set) that the CLI,
the test suite and the benchmark harness all iterate over.  Each entry pairs
a base :class:`~repro.scenarios.config.ScenarioConfig` with the budget grid
its monotonicity property is asserted on.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable
from typing import Any

from ..exceptions import ConfigurationError
from .config import ScenarioConfig
from .engine import ScenarioResult, run_config, sweep_config

__all__ = [
    "SCENARIOS",
    "Scenario",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_scenario",
    "sweep_scenario",
]


@dataclass(frozen=True)
class Scenario:
    """A named scenario: base config plus its standard budget grid."""

    name: str
    description: str
    base_config: ScenarioConfig
    #: Budgets on which this scenario's error is expected (and tested) to be
    #: monotone non-decreasing for any fixed seed.
    budget_grid: tuple[float, ...] = (0.25, 0.5, 1.0)

    def __post_init__(self) -> None:
        # Lookups are case-insensitive (get_scenario lowercases its key), so
        # registered names must already be lowercase or they'd be listed but
        # unrunnable.
        if self.name != self.name.strip().lower():
            raise ConfigurationError(
                f"scenario names must be lowercase, got {self.name!r}"
            )
        if not self.budget_grid:
            raise ConfigurationError(f"scenario {self.name!r} needs a non-empty budget grid")
        if any(not 0.0 <= b <= 1.0 for b in self.budget_grid):
            raise ConfigurationError(
                f"scenario {self.name!r} budget grid must lie in [0, 1], "
                f"got {self.budget_grid}"
            )
        if self.base_config.name != self.name:
            raise ConfigurationError(
                f"scenario {self.name!r} wraps a config named "
                f"{self.base_config.name!r}; names must match"
            )


#: All registered scenarios, keyed by name (insertion order is listing order).
SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (rejects duplicate names)."""
    if scenario.name in SCENARIOS:
        raise ConfigurationError(f"scenario {scenario.name!r} is already registered")
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in SCENARIOS:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        )
    return SCENARIOS[key]


def list_scenarios() -> list[dict[str, Any]]:
    """Serialisable listing of every registered scenario."""
    return [
        {
            "name": scenario.name,
            "description": scenario.description,
            "budget_grid": list(scenario.budget_grid),
            "samplers": sorted(scenario.base_config.samplers),
            "adversary": scenario.base_config.adversary_label,
            "set_system": scenario.base_config.set_system.get("kind"),
        }
        for scenario in SCENARIOS.values()
    ]


def run_scenario(name: str, **overrides: Any) -> ScenarioResult:
    """Run a registered scenario, with optional config-field overrides.

    ``run_scenario("prefix_flood", attack_budget=0.5, trials=20)`` replays
    the registered base config at a different point of the knob space.
    """
    scenario = get_scenario(name)
    config = scenario.base_config.replace(**overrides) if overrides else scenario.base_config
    return run_config(config)


def sweep_scenario(
    name: str,
    budgets: Iterable[float] | None = None,
    seeds: Iterable[int] | None = None,
    **overrides: Any,
) -> list[ScenarioResult]:
    """Sweep a registered scenario over ``(budget × sampler × seed)``.

    ``budgets`` defaults to the scenario's registered budget grid; ``seeds``
    defaults to the base config's single seed.  The sampler dimension is the
    config's sampler grid, swept inside each batch run.
    """
    scenario = get_scenario(name)
    config = scenario.base_config.replace(**overrides) if overrides else scenario.base_config
    if budgets is None:
        budgets = scenario.budget_grid
    return sweep_config(config, budgets=budgets, seeds=seeds)
