"""Property-based fuzzing over the scenario configuration space.

The scenario layer is a grid of independent knobs — sampler family,
adversary family or campaign roster, knowledge model, set system, sharding,
fault plan, decision cadence — and most of the engine's correctness
arguments are
*invariants over that whole grid*, not facts about individual registered
scenarios.  This module samples random valid :class:`ScenarioConfig` points
and checks four such invariants on each:

``bit_reproducibility``
    Two runs of the same config produce byte-identical results
    (``to_dict(include_timing=False)``): all randomness flows from the seed.
``budget_monotonicity``
    ``attacked_peak_discrepancy`` is monotone non-decreasing in the attack
    budget for a fixed seed (budget-independent attack prefixes plus
    budget-independent checkpoint schedules).
``chunking_independence``
    Chunked columnar execution equals ``chunk_size=1`` bit-for-bit, for
    sampler kernels that are chunk-invariant and deterministic routing.
``sharded_agreement``
    A sharded deployment equals per-site standalone samplers fed the same
    routed substreams — per-site states and the merged coordinator view —
    reconstructed through twin generators.

Two front doors sample the space: :func:`random_choices` draws from a plain
numpy generator (used by ``repro-experiments scenario fuzz`` so the CLI has
no optional dependencies), while :func:`choices_strategy` wraps the same
pools in Hypothesis strategies for the property-based test suite
(``tests/test_scenario_fuzz.py``).  Hypothesis is imported lazily, only
inside :func:`choices_strategy`.
"""

from __future__ import annotations

import copy
import json
from dataclasses import asdict, dataclass, field
from typing import Any

import numpy as np

from ..distributed.sharded import ShardedSampler, build_sharding_strategy
from ..rng import ensure_generator, spawn_generators
from .builders import MERGEABLE_SAMPLER_FAMILIES, SamplerFromSpec
from .config import ScenarioConfig
from .engine import ScenarioResult, run_config

__all__ = [
    "ADVERSARY_POOL",
    "CAMPAIGN_POOL",
    "CHUNK_IDENTICAL_SAMPLER_FAMILIES",
    "DEFENSE_POOL",
    "DETERMINISTIC_ROUTING_STRATEGIES",
    "EXACT_MERGE_FAMILIES",
    "FAULT_POOL",
    "FuzzChoices",
    "FuzzReport",
    "INVARIANTS",
    "InvariantResult",
    "SAMPLER_POOL",
    "SERVICE_POOL",
    "build_fuzz_config",
    "check_invariants",
    "choices_strategy",
    "fuzz",
    "random_choices",
]


# ----------------------------------------------------------------------
# Choice pools
# ----------------------------------------------------------------------
#: Sampler specs the fuzzer draws from, keyed by pool name.  Capacities are
#: small relative to the fuzz stream lengths so eviction paths get exercised.
SAMPLER_POOL: dict[str, dict[str, Any]] = {
    "bernoulli": {"family": "bernoulli", "probability": 0.2},
    "reservoir": {"family": "reservoir", "capacity": 12},
    "sliding_window": {"family": "sliding_window", "capacity": 8, "window": 48},
    "weighted_reservoir": {"family": "weighted_reservoir", "capacity": 12},
}

#: Solo adversary specs.  ``sorted`` (exhausts when the stream outgrows the
#: universe), ``bisection`` (float streams need a continuous set system) and
#: ``figure3`` (wants sampler-matched parameters) are deliberately absent:
#: they constrain other knobs and the registered scenarios already pin them.
ADVERSARY_POOL: dict[str, dict[str, Any]] = {
    "uniform": {"family": "uniform"},
    "zipf": {"family": "zipf", "exponent": 1.3},
    "greedy_density": {
        "family": "greedy_density",
        "target": {"kind": "prefix", "bound_fraction": 0.5},
    },
    "eviction_chaser": {
        "family": "eviction_chaser",
        "target": {"kind": "prefix", "bound_fraction": 0.5},
        "reservoir_size": 12,
    },
    "median_attack": {"family": "median_attack"},
    "switching_singleton": {"family": "switching_singleton"},
}

#: Campaign blocks covering both modes, two- and three-member rosters, and
#: mixed oblivious/cadenced phases.  Phased starts are chosen so the phase
#: boundaries stay distinct at every fuzz stream length.
CAMPAIGN_POOL: dict[str, dict[str, Any]] = {
    "phased_spam_poison": {
        "mode": "phased",
        "members": [
            {"label": "spam", "adversary": {"family": "zipf", "exponent": 1.5}},
            {
                "label": "poison",
                "start": 0.5,
                "adversary": {
                    "family": "greedy_density",
                    "target": {"kind": "prefix", "bound_fraction": 0.5},
                },
            },
        ],
    },
    "phased_probe_strike": {
        "mode": "phased",
        "members": [
            {"label": "probe", "adversary": {"family": "median_attack"}},
            {
                "label": "strike",
                "start": 0.4,
                "adversary": {
                    "family": "greedy_density",
                    "target": {"kind": "prefix", "bound_fraction": 0.5},
                },
            },
        ],
    },
    "phased_three_act": {
        "mode": "phased",
        "members": [
            {"label": "noise", "adversary": {"family": "uniform"}},
            {
                "label": "skew",
                "start": 0.3,
                "adversary": {"family": "zipf", "exponent": 1.5},
            },
            {
                "label": "strike",
                "start": 0.7,
                "adversary": {
                    "family": "greedy_density",
                    "target": {"kind": "prefix", "bound_fraction": 0.5},
                },
            },
        ],
    },
    "interleaved_pair": {
        "mode": "interleaved",
        "stride": 8,
        "members": [
            {
                "label": "striker",
                "adversary": {
                    "family": "greedy_density",
                    "target": {"kind": "prefix", "bound_fraction": 0.5},
                },
            },
            {"label": "noise", "adversary": {"family": "uniform"}},
        ],
    },
}

#: Defense blocks the fuzzer layers over the sampler axis.  Two copies keep
#: the fuzz configs cheap; the difference estimator is gated to
#: sliding-window samplers (see :class:`FuzzChoices`).  The invariants must
#: hold for defended configs exactly as for undefended ones: the wrappers'
#: serving policies are pure functions of exposure history and round count,
#: so they preserve bit-reproducibility, budget monotonicity, chunking
#: independence and sharded agreement by construction — this pool is what
#: continuously checks that claim.
DEFENSE_POOL: dict[str, dict[str, Any]] = {
    "oversample": {"kind": "oversample", "factor": 2},
    "sketch_switching": {"kind": "sketch_switching", "copies": 2},
    "dp_aggregate": {"kind": "dp_aggregate", "copies": 2},
    "difference_estimator": {"kind": "difference_estimator", "copies": 2},
}

#: Fault blocks the fuzzer layers over sharded deployments (PR 8).  All
#: rounds are stream fractions so every fuzz stream length gets the same
#: relative timeline; crash/merge site indices stay below the smallest
#: ``_SITE_CHOICES`` entry so every sharded draw is valid.  Fault plans are
#: functions of the stream length alone — never of the budget or the chunk
#: size — so the invariants below must keep holding for faulted configs.
FAULT_POOL: dict[str, dict[str, Any]] = {
    "crash_drop": {
        "crashes": [
            {
                "site": 0,
                "round_fraction": 0.3,
                "recovery_fraction": 0.25,
                "loss": "drop",
            }
        ]
    },
    "crash_replay": {
        "crashes": [
            {
                "site": 1,
                "round_fraction": 0.4,
                "recovery_fraction": 0.2,
                "loss": "replay",
            }
        ]
    },
    "stale_cache": {
        "stale_windows": [{"round_fraction": 0.5, "duration_fraction": 0.2}]
    },
    "split_then_merge": {
        "reshards": [
            {"round_fraction": 0.4, "op": "split", "site": 0},
            {"round_fraction": 0.7, "op": "merge", "site": 0, "other": 1},
        ]
    },
}

#: Service blocks the fuzzer layers over any config (PR 9): the always-on
#: query-service facade with its three knobs — snapshot staleness bound,
#: background client count and query cadence.  The background read schedule
#: is a pure function of the round index (never of the budget or the chunk
#: size), so all four invariants below must keep holding for serviced
#: configs — including exposure-tracked defended ones, where background
#: reads genuinely advance the defense's serving state.
SERVICE_POOL: dict[str, dict[str, Any]] = {
    "fresh_reads": {"staleness_rounds": 0, "clients": 2, "query_period": 8},
    "stale_snapshots": {"staleness_rounds": 24, "clients": 1, "query_period": 8},
    "query_storm": {"staleness_rounds": 8, "clients": 4, "query_period": 4},
}

#: Sampler families whose batched kernels are bit-identical to per-element
#: processing (the reservoir batch kernel draws its coins in a different,
#: equally distributed order, so it is excluded).
CHUNK_IDENTICAL_SAMPLER_FAMILIES = ("bernoulli", "sliding_window", "weighted_reservoir")

#: Routing strategies that assign sites identically on the batched and
#: per-element paths (random/skewed draw batched coins, so chunking changes
#: the realisation).
DETERMINISTIC_ROUTING_STRATEGIES = ("hash", "round_robin")

#: Mergeable families whose coordinator merge is exact (deterministic given
#: the merge generator's state); the reservoir coordinator redraws
#: hypergeometrically, so its merged view is checked per-site only.
EXACT_MERGE_FAMILIES = ("bernoulli", "sliding_window")

#: Invariant names, in reporting order.
INVARIANTS = (
    "bit_reproducibility",
    "budget_monotonicity",
    "chunking_independence",
    "sharded_agreement",
)

_SITE_CHOICES = (2, 3, 4)
_STRATEGY_CHOICES = ("random", "hash", "round_robin", "skewed")
_STREAM_CHOICES = (64, 96, 128, 160)
_UNIVERSE_CHOICES = (16, 32, 48)
_KNOWLEDGE_CHOICES = ("full", "updates", "oblivious")
_SET_SYSTEM_CHOICES = ("prefix", "interval")
_PERIOD_CHOICES = (None, 4, 8)
_BUDGET_TOLERANCE = 1e-12


# ----------------------------------------------------------------------
# Choices
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FuzzChoices:
    """One sampled point of the scenario knob space (pool keys, not specs).

    ``adversary`` and ``campaign`` are mutually exclusive (exactly one is
    set); ``sites``/``strategy`` are ``None`` for unsharded configs and only
    valid for mergeable sampler families.  :func:`build_fuzz_config` turns a
    ``FuzzChoices`` into a runnable :class:`ScenarioConfig`.
    """

    stream_length: int
    universe_size: int
    knowledge: str
    set_system: str
    sampler: str
    sites: int | None
    strategy: str | None
    adversary: str | None
    campaign: str | None
    decision_period: int | None
    seed: int
    #: Defense pool key, or ``None`` for an undefended config.
    defense: str | None = None
    #: Fault pool key, or ``None``; only valid for sharded configs.
    faults: str | None = None
    #: Service pool key, or ``None`` to observe the sampler directly; valid
    #: for every config (the facade is sampler-agnostic).
    service: str | None = None

    def __post_init__(self) -> None:
        if (self.adversary is None) == (self.campaign is None):
            raise ValueError("exactly one of 'adversary' and 'campaign' must be set")
        if self.sites is not None:
            family = SAMPLER_POOL[self.sampler]["family"]
            if family not in MERGEABLE_SAMPLER_FAMILIES:
                raise ValueError(f"sampler {self.sampler!r} cannot be sharded")
        if self.faults is not None and self.sites is None:
            raise ValueError("a fault plan requires a sharded config")
        if self.defense is not None:
            family = SAMPLER_POOL[self.sampler]["family"]
            if (
                self.defense == "difference_estimator"
                and family != "sliding_window"
            ):
                raise ValueError(
                    "the difference estimator only defends sliding-window samplers"
                )


def _pick(rng: np.random.Generator, options: Any) -> Any:
    return options[int(rng.integers(len(options)))]


def _defense_options(sampler: str) -> list[str]:
    """Defense pool keys valid for ``sampler`` (see :class:`FuzzChoices`)."""
    family = SAMPLER_POOL[sampler]["family"]
    return [
        key
        for key in sorted(DEFENSE_POOL)
        if key != "difference_estimator" or family == "sliding_window"
    ]


def random_choices(
    rng: Any,
    seed: int = 0,
    include_faults: bool = True,
    include_service: bool = True,
) -> FuzzChoices:
    """Draw one valid :class:`FuzzChoices` from a numpy generator.

    ``seed`` becomes the config seed verbatim — callers iterate it to make
    every drawn config distinct even when the categorical draws collide.
    ``include_faults=False`` suppresses the fault-plan knob and
    ``include_service=False`` the query-service knob (the draws are still
    consumed, so the other knobs are unchanged by the flags).
    """
    rng = ensure_generator(rng)
    sampler = _pick(rng, sorted(SAMPLER_POOL))
    campaign = _pick(rng, sorted(CAMPAIGN_POOL)) if rng.random() < 0.4 else None
    adversary = None if campaign is not None else _pick(rng, sorted(ADVERSARY_POOL))
    shardable = SAMPLER_POOL[sampler]["family"] in MERGEABLE_SAMPLER_FAMILIES
    sites = int(_pick(rng, _SITE_CHOICES)) if shardable and rng.random() < 0.5 else None
    strategy = _pick(rng, _STRATEGY_CHOICES) if sites is not None else None
    period = _pick(rng, _PERIOD_CHOICES)
    defense = _pick(rng, _defense_options(sampler)) if rng.random() < 0.35 else None
    faults = (
        _pick(rng, sorted(FAULT_POOL)) if sites is not None and rng.random() < 0.3 else None
    )
    if not include_faults:
        faults = None
    service = _pick(rng, sorted(SERVICE_POOL)) if rng.random() < 0.3 else None
    if not include_service:
        service = None
    return FuzzChoices(
        stream_length=int(_pick(rng, _STREAM_CHOICES)),
        universe_size=int(_pick(rng, _UNIVERSE_CHOICES)),
        knowledge=_pick(rng, _KNOWLEDGE_CHOICES),
        set_system=_pick(rng, _SET_SYSTEM_CHOICES),
        sampler=sampler,
        sites=sites,
        strategy=strategy,
        adversary=adversary,
        campaign=campaign,
        decision_period=None if period is None else int(period),
        seed=int(seed),
        defense=defense,
        faults=faults,
        service=service,
    )


def choices_strategy() -> Any:
    """A Hypothesis strategy over valid :class:`FuzzChoices`.

    Hypothesis is imported here, not at module level, so the fuzzing CLI
    (which uses :func:`random_choices`) works without it installed.
    """
    import hypothesis.strategies as st

    def _with_sharding(sampler: str) -> Any:
        shardable = SAMPLER_POOL[sampler]["family"] in MERGEABLE_SAMPLER_FAMILIES
        sites = (
            st.one_of(st.none(), st.sampled_from(_SITE_CHOICES))
            if shardable
            else st.none()
        )
        return st.tuples(st.just(sampler), sites)

    def _assemble(drawn: Any) -> Any:
        (sampler, sites), adversary, campaign = drawn
        strategy = (
            st.just(None) if sites is None else st.sampled_from(_STRATEGY_CHOICES)
        )
        return st.builds(
            FuzzChoices,
            stream_length=st.sampled_from(_STREAM_CHOICES),
            universe_size=st.sampled_from(_UNIVERSE_CHOICES),
            knowledge=st.sampled_from(_KNOWLEDGE_CHOICES),
            set_system=st.sampled_from(_SET_SYSTEM_CHOICES),
            sampler=st.just(sampler),
            sites=st.just(sites),
            strategy=strategy,
            adversary=st.just(adversary),
            campaign=st.just(campaign),
            decision_period=st.sampled_from(_PERIOD_CHOICES),
            seed=st.integers(min_value=0, max_value=2**20),
            defense=st.one_of(
                st.none(), st.sampled_from(_defense_options(sampler))
            ),
            faults=(
                st.just(None)
                if sites is None
                else st.one_of(st.none(), st.sampled_from(sorted(FAULT_POOL)))
            ),
            service=st.one_of(st.none(), st.sampled_from(sorted(SERVICE_POOL))),
        )

    solo = st.tuples(
        st.sampled_from(sorted(SAMPLER_POOL)).flatmap(_with_sharding),
        st.sampled_from(sorted(ADVERSARY_POOL)),
        st.none(),
    )
    rostered = st.tuples(
        st.sampled_from(sorted(SAMPLER_POOL)).flatmap(_with_sharding),
        st.none(),
        st.sampled_from(sorted(CAMPAIGN_POOL)),
    )
    return st.one_of(solo, rostered).flatmap(_assemble)


def build_fuzz_config(choices: FuzzChoices) -> ScenarioConfig:
    """Compile a :class:`FuzzChoices` into a runnable single-trial config."""
    sharding = (
        None
        if choices.sites is None
        else {"sites": choices.sites, "strategy": choices.strategy}
    )
    kwargs: dict[str, Any] = {}
    if choices.campaign is not None:
        kwargs["campaign"] = copy.deepcopy(CAMPAIGN_POOL[choices.campaign])
    else:
        kwargs["adversary"] = copy.deepcopy(ADVERSARY_POOL[choices.adversary])
    return ScenarioConfig(
        name="fuzz",
        description="property-based fuzz point",
        stream_length=choices.stream_length,
        universe_size=choices.universe_size,
        epsilon=0.25,
        trials=1,
        seed=choices.seed,
        knowledge=choices.knowledge,
        decision_period=choices.decision_period,
        samplers={choices.sampler: copy.deepcopy(SAMPLER_POOL[choices.sampler])},
        set_system={"kind": choices.set_system},
        sharding=sharding,
        defense=(
            None
            if choices.defense is None
            else copy.deepcopy(DEFENSE_POOL[choices.defense])
        ),
        faults=(
            None
            if choices.faults is None
            else copy.deepcopy(FAULT_POOL[choices.faults])
        ),
        service=(
            None
            if choices.service is None
            else copy.deepcopy(SERVICE_POOL[choices.service])
        ),
        **kwargs,
    )


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InvariantResult:
    """Outcome of one invariant on one config: passed, failed, or skipped
    (with ``detail`` naming the gate or the observed disagreement)."""

    name: str
    status: str
    detail: str = ""


def _result(name: str, passed: bool, detail: str = "") -> InvariantResult:
    return InvariantResult(name, "passed" if passed else "failed", detail if not passed else "")


def _skip(name: str, detail: str) -> InvariantResult:
    return InvariantResult(name, "skipped", detail)


def _comparable(result: ScenarioResult) -> dict[str, Any]:
    data = result.to_dict(include_timing=False)
    # chunk_size is an execution knob, not an outcome; drop it so the
    # chunking invariant can compare runs that differ only in it.
    data["config"].pop("chunk_size", None)
    return data


def _bit_reproducibility(config: ScenarioConfig, base: ScenarioResult) -> InvariantResult:
    rerun = run_config(config)
    same = _comparable(rerun) == _comparable(base)
    return _result("bit_reproducibility", same, "re-run produced a different result")


def _budget_monotonicity(config: ScenarioConfig, base: ScenarioResult) -> InvariantResult:
    name = "budget_monotonicity"
    lower = run_config(config.replace(attack_budget=config.attack_budget / 2.0))
    low = lower.attacked_peak_discrepancy
    high = base.attacked_peak_discrepancy
    if low is None or high is None:
        return _skip(name, "attacked peak undefined at one budget")
    return _result(
        name,
        low <= high + _BUDGET_TOLERANCE,
        f"attacked peak decreased with budget: {low} at "
        f"{config.attack_budget / 2.0} vs {high} at {config.attack_budget}",
    )


def _chunking_independence(config: ScenarioConfig, base: ScenarioResult) -> InvariantResult:
    name = "chunking_independence"
    family = next(iter(config.samplers.values()))["family"]
    if family not in CHUNK_IDENTICAL_SAMPLER_FAMILIES:
        return _skip(name, f"sampler family {family!r} has no bit-identical batch kernel")
    if config.sharding is not None:
        strategy = config.sharding.get("strategy")
        if strategy not in DETERMINISTIC_ROUTING_STRATEGIES:
            return _skip(name, f"routing strategy {strategy!r} draws batched coins")
    per_element = run_config(config.replace(chunk_size=1))
    same = _comparable(per_element) == _comparable(base)
    return _result(name, same, "chunk_size=1 produced a different result")


def _sharded_agreement(config: ScenarioConfig) -> InvariantResult:
    """Replay the sharded deployment against twin standalone sites.

    Twin-generator trick: ``ensure_generator`` of the same integer seed
    yields identical states, so spawning ``sites + 2`` children reproduces
    the deployment's internal route/merge/site generators exactly.  Feeding
    the whole synthetic stream in one ``extend`` call makes the comparison
    exact for *every* strategy (the batched routing coins are drawn once,
    identically, on both sides).
    """
    name = "sharded_agreement"
    if config.sharding is None:
        return _skip(name, "config is unsharded")
    if config.faults is not None:
        # The twin reconstruction models routing + merging only; crashes,
        # replay buffers and reshards live in the deployment layer.  The
        # fault semantics have their own suite (tests/test_faults.py).
        return _skip(name, "faulted deployments have no standalone twin")
    spec = dict(next(iter(config.samplers.values())))
    family = spec["family"]
    sites = int(config.sharding["sites"])
    strategy_spec = config.sharding.get("strategy")
    seed = config.seed + 104729
    stream = [
        int(value)
        for value in np.random.default_rng(config.seed + 1).integers(
            1, config.universe_size + 1, size=config.stream_length
        )
    ]

    # Defense composes inside sharding (each site is independently
    # defended), so the twin sites are built through the same defended
    # factory the deployment uses.
    site_factory = SamplerFromSpec(spec, defense=config.defense)
    sharded = ShardedSampler(sites, site_factory, strategy=strategy_spec, seed=seed)
    twin = ensure_generator(seed)
    route_rng, merge_rng, *site_rngs = spawn_generators(twin, sites + 2)
    assignment = build_sharding_strategy(strategy_spec).assign(
        stream, 1, sites, route_rng
    )
    sharded.extend(stream, updates=False)

    standalone = [site_factory(site_rng) for site_rng in site_rngs]
    for index, site_sampler in enumerate(standalone):
        substream = [stream[int(pos)] for pos in np.flatnonzero(assignment == index)]
        if substream:
            site_sampler.extend(substream, updates=False)

    for index in range(sites):
        if tuple(sharded.site_sample(index)) != tuple(standalone[index].sample):
            return _result(name, False, f"site {index} diverged from its standalone twin")
    if family not in EXACT_MERGE_FAMILIES:
        return _result(
            "sharded_agreement", True, ""
        )  # per-site agreement only; merge is randomised
    primary, rest = standalone[0], standalone[1:]
    if getattr(primary, "merge_wants_offsets", False):
        offsets = [len(stream) - site.rounds_processed for site in standalone]
        reference = primary.merge(rest, rng=merge_rng, offsets=offsets)
    else:
        reference = primary.merge(rest, rng=merge_rng)
    same = tuple(reference.sample) == tuple(sharded.merged_sampler().sample)
    return _result(name, same, "merged coordinator view diverged from reference merge")


def check_invariants(config: ScenarioConfig) -> list[InvariantResult]:
    """Check all four registry-wide invariants on one config.

    The base run is shared: reproducibility re-runs it, monotonicity
    compares a half-budget run against it, chunking compares a
    ``chunk_size=1`` run against it; sharded agreement replays the
    deployment directly against standalone twins.
    """
    base = run_config(config)
    return [
        _bit_reproducibility(config, base),
        _budget_monotonicity(config, base),
        _chunking_independence(config, base),
        _sharded_agreement(config),
    ]


# ----------------------------------------------------------------------
# Batch fuzzing (the CLI entry point)
# ----------------------------------------------------------------------
@dataclass
class FuzzReport:
    """Aggregate outcome of a fuzzing batch."""

    examples: int
    distinct_configs: int
    #: Per-invariant counters: ``{invariant: {"passed": n, "failed": n,
    #: "skipped": n}}``.
    invariants: dict[str, dict[str, int]] = field(default_factory=dict)
    #: One record per failed check: the choices, the invariant and its detail.
    failures: list[dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict[str, Any]:
        return {
            "examples": self.examples,
            "distinct_configs": self.distinct_configs,
            "invariants": copy.deepcopy(self.invariants),
            "failures": copy.deepcopy(self.failures),
            "ok": self.ok,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        lines = [
            f"fuzzed {self.examples} configs ({self.distinct_configs} distinct): "
            + ("all invariants held" if self.ok else f"{len(self.failures)} failure(s)")
        ]
        for invariant in INVARIANTS:
            counts = self.invariants.get(invariant, {})
            lines.append(
                f"  {invariant}: {counts.get('passed', 0)} passed, "
                f"{counts.get('failed', 0)} failed, {counts.get('skipped', 0)} skipped"
            )
        for failure in self.failures:
            lines.append(
                f"  FAILED {failure['invariant']} on seed {failure['choices']['seed']}: "
                f"{failure['detail']}"
            )
        return "\n".join(lines)


def fuzz(
    count: int,
    seed: int = 0,
    include_faults: bool = True,
    include_service: bool = True,
) -> FuzzReport:
    """Draw ``count`` random configs and check every invariant on each.

    The categorical knobs are drawn from one generator seeded with ``seed``;
    the ``index``-th config gets seed ``seed + index``, so all ``count``
    configs are pairwise distinct by construction (distinctness is still
    measured, over the serialised configs, and reported).
    ``include_faults=False`` restricts the sweep to fault-free deployments;
    ``include_service=False`` to directly observed (serviceless) ones.
    """
    rng = np.random.default_rng(seed)
    report = FuzzReport(examples=0, distinct_configs=0)
    report.invariants = {
        invariant: {"passed": 0, "failed": 0, "skipped": 0} for invariant in INVARIANTS
    }
    seen: set[str] = set()
    for index in range(count):
        choices = random_choices(
            rng,
            seed=seed + index,
            include_faults=include_faults,
            include_service=include_service,
        )
        config = build_fuzz_config(choices)
        seen.add(config.to_json(indent=None))
        for outcome in check_invariants(config):
            report.invariants[outcome.name][outcome.status] += 1
            if outcome.status == "failed":
                report.failures.append(
                    {
                        "choices": asdict(choices),
                        "invariant": outcome.name,
                        "detail": outcome.detail,
                    }
                )
        report.examples += 1
    report.distinct_configs = len(seen)
    return report
