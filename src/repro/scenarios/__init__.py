"""Declarative adversarial scenarios on top of the batched game engine.

The experiments layer (E1–E14) reproduces the paper's fixed tables; this
layer serves the ROADMAP's "as many scenarios as you can imagine" goal:

* :class:`ScenarioConfig` — a JSON-serialisable description of one attack
  scenario (budget, knowledge model, sampler grid, adversary, set system,
  scale knobs);
* :mod:`~repro.scenarios.builders` — compiles specs to picklable factories;
* :func:`run_config` / :func:`sweep_config` — execution through
  :class:`~repro.adversary.batch.BatchGameRunner` (worker pools and
  scheduling-independent seeding apply to every scenario for free);
* :data:`SCENARIOS` — the registry of named scenarios (``prefix_flood``,
  ``bisection_probe``, ...), each with a ``run_<name>()`` runner and exposed
  on the CLI as ``repro-experiments scenario {list,run,sweep}``.

See ``docs/architecture.md`` ("Scenario layer") for the spec schema.
"""

from .builders import (
    AdversaryFromSpec,
    BudgetedAdversary,
    SamplerFromSpec,
    build_adversary,
    build_benign_supplier,
    build_sampler,
    build_set_system,
    build_target_range,
)
from .config import ScenarioConfig
from .engine import ScenarioResult, run_config, sweep_config, sweep_table
# NOTE: the fuzz() entry point itself is *not* re-exported: binding it here
# would shadow the `repro.scenarios.fuzz` submodule attribute.  Call it as
# `from repro.scenarios.fuzz import fuzz`.
from .fuzz import (
    FuzzChoices,
    FuzzReport,
    InvariantResult,
    build_fuzz_config,
    check_invariants,
    choices_strategy,
    random_choices,
)
from .matrix import DEFENSE_GRID, MatrixCell, MatrixResult, run_matrix
from .registry import (
    SCENARIOS,
    Scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
    sweep_scenario,
)
from .library import (
    run_bisection_probe,
    run_cadence_probe,
    run_colluding_split_budget,
    run_cross_shard_skew,
    run_difference_estimator_defense,
    run_distributed_skew,
    run_dp_aggregate_defense,
    run_heavy_hitter_spoof,
    run_hotspot_split_flood,
    run_oversample_defense,
    run_prefix_flood,
    run_probe_then_strike,
    run_quantile_shift,
    run_query_flood_exposure,
    run_reactive_prefix_flood,
    run_recovery_window_strike,
    run_reservoir_eviction,
    run_shard_hotspot,
    run_sharded_heavy_hitter_spoof,
    run_sharded_prefix_flood,
    run_sharded_reactive_skew,
    run_sharded_sliding_window_burst,
    run_sketch_switching_defense,
    run_sliding_window_burst,
    run_spam_then_poison,
    run_stale_coordinator_probe,
    run_stale_snapshot_strike,
    run_static_baseline,
)

__all__ = [
    "DEFENSE_GRID",
    "SCENARIOS",
    "AdversaryFromSpec",
    "BudgetedAdversary",
    "FuzzChoices",
    "FuzzReport",
    "InvariantResult",
    "MatrixCell",
    "MatrixResult",
    "SamplerFromSpec",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "build_adversary",
    "build_benign_supplier",
    "build_fuzz_config",
    "build_sampler",
    "build_set_system",
    "build_target_range",
    "check_invariants",
    "choices_strategy",
    "get_scenario",
    "list_scenarios",
    "random_choices",
    "register_scenario",
    "run_config",
    "run_matrix",
    "run_scenario",
    "run_bisection_probe",
    "run_cadence_probe",
    "run_colluding_split_budget",
    "run_cross_shard_skew",
    "run_difference_estimator_defense",
    "run_distributed_skew",
    "run_dp_aggregate_defense",
    "run_heavy_hitter_spoof",
    "run_hotspot_split_flood",
    "run_oversample_defense",
    "run_prefix_flood",
    "run_probe_then_strike",
    "run_quantile_shift",
    "run_query_flood_exposure",
    "run_reactive_prefix_flood",
    "run_recovery_window_strike",
    "run_reservoir_eviction",
    "run_shard_hotspot",
    "run_sharded_heavy_hitter_spoof",
    "run_sharded_prefix_flood",
    "run_sharded_reactive_skew",
    "run_sharded_sliding_window_burst",
    "run_sketch_switching_defense",
    "run_sliding_window_burst",
    "run_spam_then_poison",
    "run_stale_coordinator_probe",
    "run_stale_snapshot_strike",
    "run_static_baseline",
    "sweep_config",
    "sweep_scenario",
    "sweep_table",
]
