"""Declarative, JSON-serializable scenario configurations.

A :class:`ScenarioConfig` captures *everything* needed to replay an attack
scenario — the game scale (stream length, universe, epsilon), the attack
budget, the knowledge model, the sampler grid, the adversary, the benign
filler distribution and the set system — as plain data.  Nothing in it is a
live object: samplers, adversaries and set systems are described by small
spec mappings (``{"family": ...}`` / ``{"kind": ...}``) that
:mod:`repro.scenarios.builders` turns into picklable factories at execution
time.  That makes every scenario serialisable to JSON, diffable, and safe to
ship across the :class:`~repro.adversary.batch.BatchGameRunner` process pool.

The **attack budget** is the scenario layer's universal scale knob: a value
``b`` in ``[0, 1]`` meaning "the adversary attacks for the first
``round(b * n)`` rounds and then submits benign filler".  Because the attack
prefix of a low-budget run is identical to that of a high-budget run (the
adversary does not know the budget, and per-trial substreams are derived
from budget-independent labels), raising the budget can only extend an
attack, never alter its beginning — which is what makes per-scenario
monotonicity checks (*larger budget ⇒ no smaller observed error*)
structurally meaningful rather than merely statistical.
"""

from __future__ import annotations

import copy
import json
from dataclasses import asdict, dataclass, field, replace as dataclass_replace
from collections.abc import Mapping
from typing import Any

from ..adversary.campaign import CAMPAIGN_MODES, phase_start_rounds
from ..distributed.faults import compile_fault_spec
from ..exceptions import ConfigurationError

#: Knowledge models accepted by the game runners.
KNOWLEDGE_MODELS = ("full", "updates", "oblivious")

#: Defense kinds accepted by the ``defense`` block.  ``oversample`` is
#: Theorem 1.2's k -> factor*k capacity scaling (a spec rewrite, no wrapper);
#: the rest are the copy-replication wrappers from :mod:`repro.defenses`.
DEFENSE_KINDS = ("oversample", "sketch_switching", "dp_aggregate", "difference_estimator")

#: The defense kinds realised by a :class:`~repro.defenses.wrappers.\
#: ReplicatedDefenseSampler` subclass (they all take ``copies`` and
#: ``matched_space``).
REPLICATED_DEFENSE_KINDS = ("sketch_switching", "dp_aggregate", "difference_estimator")

#: Per-kind allowed fields (beyond ``kind``) and their validation.
_DEFENSE_FIELDS = {
    "oversample": {"factor"},
    "sketch_switching": {"copies", "matched_space", "growth"},
    "dp_aggregate": {"copies", "matched_space", "dp_epsilon"},
    "difference_estimator": {"copies", "matched_space", "rotation_fraction"},
}


def _validate_defense(value: Any) -> dict[str, Any]:
    """Normalise and validate a scenario's ``defense`` block.

    Returns a deep copy with defaults resolved.  Family compatibility (the
    difference estimator needs a sliding-window sampler; oversampling needs a
    capacity or probability to scale) is checked against each sampler spec in
    :class:`~repro.scenarios.builders.SamplerFromSpec`, not here — the
    defense block itself is sampler-agnostic.
    """
    defense = _as_spec(value, "defense", "kind")
    kind = defense["kind"]
    if kind not in DEFENSE_KINDS:
        raise ConfigurationError(
            f"unknown defense kind {kind!r}; expected one of {DEFENSE_KINDS}"
        )
    unknown = set(defense) - {"kind"} - _DEFENSE_FIELDS[kind]
    if unknown:
        raise ConfigurationError(
            f"unknown fields in {kind} defense spec: {', '.join(sorted(unknown))}"
        )
    if kind == "oversample":
        factor = float(defense.setdefault("factor", 4))
        if factor < 1.0:
            raise ConfigurationError(
                f"oversample factor must be >= 1, got {factor}"
            )
        defense["factor"] = factor
        return defense
    copies = int(defense.setdefault("copies", 4))
    if copies < 2:
        raise ConfigurationError(
            f"a {kind} defense needs at least 2 copies, got {copies}"
        )
    defense["copies"] = copies
    defense["matched_space"] = bool(defense.setdefault("matched_space", False))
    if kind == "sketch_switching":
        growth = float(defense.setdefault("growth", 2.0))
        if growth <= 1.0:
            raise ConfigurationError(
                f"sketch-switching growth must exceed 1, got {growth}"
            )
        defense["growth"] = growth
    elif kind == "dp_aggregate":
        dp_epsilon = float(defense.setdefault("dp_epsilon", 1.0))
        if dp_epsilon <= 0.0:
            raise ConfigurationError(
                f"dp_epsilon must be positive, got {dp_epsilon}"
            )
        defense["dp_epsilon"] = dp_epsilon
    else:
        rotation_fraction = float(defense.setdefault("rotation_fraction", 1.0))
        if not 0.0 < rotation_fraction <= 4.0:
            raise ConfigurationError(
                "rotation_fraction (serving-copy rotation period as a "
                f"fraction of the window) must lie in (0, 4], got {rotation_fraction}"
            )
        defense["rotation_fraction"] = rotation_fraction
    return defense

#: The adversary field's default spec; a scenario that sets a ``campaign``
#: must leave ``adversary`` at this default (the campaign members define the
#: attack).
DEFAULT_ADVERSARY_SPEC = {"family": "uniform"}


def _validate_campaign(
    value: Any, stream_length: int, adversary: Mapping[str, Any]
) -> dict[str, Any]:
    """Normalise and validate a scenario's ``campaign`` block.

    Returns a deep copy with defaults resolved (``mode``, interleaved
    ``stride``, phased per-member ``start``); the round schedule implied by
    phased start fractions is checked against ``stream_length`` here, so a
    ``replace(stream_length=...)`` that collapses two phases fails at
    configuration time, not mid-game.
    """
    if not isinstance(value, Mapping):
        raise ConfigurationError(
            f"campaign spec must be a mapping, got {type(value).__name__}"
        )
    if adversary != DEFAULT_ADVERSARY_SPEC:
        raise ConfigurationError(
            "a scenario cannot set both 'campaign' and a non-default 'adversary' "
            f"(got adversary {dict(adversary)!r}); the campaign's members define "
            "the attack"
        )
    campaign = copy.deepcopy(dict(value))
    unknown = set(campaign) - {"mode", "members", "stride"}
    if unknown:
        raise ConfigurationError(
            f"unknown fields in campaign spec: {', '.join(sorted(unknown))}"
        )
    mode = campaign.setdefault("mode", "phased")
    if mode not in CAMPAIGN_MODES:
        raise ConfigurationError(
            f"unknown campaign mode {mode!r}; expected one of {CAMPAIGN_MODES}"
        )
    members = campaign.get("members")
    if not isinstance(members, list) or not members:
        raise ConfigurationError("a campaign needs a non-empty 'members' list")
    normalised = []
    for index, member in enumerate(members):
        if not isinstance(member, Mapping):
            raise ConfigurationError(
                f"campaign member #{index} must be a mapping, "
                f"got {type(member).__name__}"
            )
        member = dict(member)
        member_unknown = set(member) - {"adversary", "start", "label"}
        if member_unknown:
            raise ConfigurationError(
                f"unknown fields in campaign member #{index}: "
                f"{', '.join(sorted(member_unknown))}"
            )
        if "adversary" not in member:
            raise ConfigurationError(
                f"campaign member #{index} needs an 'adversary' spec"
            )
        member["adversary"] = _as_spec(
            member["adversary"], f"campaign member #{index} adversary", "family"
        )
        if "label" in member and not isinstance(member["label"], str):
            raise ConfigurationError(
                f"campaign member #{index} label must be a string"
            )
        normalised.append(member)
    if mode == "phased":
        if "stride" in campaign:
            raise ConfigurationError(
                "'stride' only applies to interleaved campaigns; phased "
                "campaigns schedule by per-member 'start' fractions"
            )
        starts = []
        for index, member in enumerate(normalised):
            if "start" not in member:
                if index > 0:
                    raise ConfigurationError(
                        f"campaign member #{index} needs a 'start' fraction "
                        "in phased mode (the first member defaults to 0.0)"
                    )
                member["start"] = 0.0
            start = float(member["start"])
            member["start"] = start
            if not 0.0 <= start < 1.0:
                raise ConfigurationError(
                    f"campaign member #{index} start must lie in [0, 1), got {start}"
                )
            starts.append(start)
        # Raises when the fractions collapse or escape at this stream length.
        phase_start_rounds(starts, stream_length)
    else:
        stride = int(campaign.setdefault("stride", 16))
        if stride < 1:
            raise ConfigurationError(f"campaign stride must be >= 1, got {stride}")
        campaign["stride"] = stride
        for index, member in enumerate(normalised):
            if "start" in member:
                raise ConfigurationError(
                    f"campaign member #{index} declares a 'start', but interleaved "
                    "campaigns schedule by slots; remove it or use mode 'phased'"
                )
    campaign["members"] = normalised
    return campaign


def _validate_faults(
    value: Any, stream_length: int, sharding: Mapping[str, Any] | None
) -> dict[str, Any]:
    """Normalise and validate a scenario's ``faults`` block.

    Returns a deep copy with **fraction fields left unresolved** — the block
    is compiled against the effective stream length at build time
    (:func:`repro.distributed.faults.compile_fault_spec`), so a
    ``replace(stream_length=...)`` rescales the fault schedule instead of
    going stale.  Compilation is still exercised here, against the current
    stream length, so malformed specs fail at configuration time.
    """
    if sharding is None:
        raise ConfigurationError(
            "a 'faults' block requires a 'sharding' block: faults describe "
            "site crashes, coordinator staleness and resharding of a sharded "
            "deployment"
        )
    if not isinstance(value, Mapping):
        raise ConfigurationError(
            f"faults spec must be a mapping, got {type(value).__name__}"
        )
    faults = copy.deepcopy(dict(value))
    plan = compile_fault_spec(faults, stream_length)
    if not plan.reshards:
        # Without resharding the topology is static, so site references can
        # be bounds-checked now instead of failing mid-game.
        sites = int(sharding["sites"])
        for crash in plan.crashes:
            if crash.site >= sites:
                raise ConfigurationError(
                    f"faults crash targets site {crash.site}, but the "
                    f"deployment has {sites} sites"
                )
    return faults


#: Allowed fields of the ``service`` block and their defaults (see
#: :class:`~repro.service.served.ServedSampler` for semantics).
_SERVICE_DEFAULTS = {"staleness_rounds": 0, "clients": 0, "query_period": 32}


def _validate_service(value: Any) -> dict[str, Any]:
    """Normalise and validate a scenario's ``service`` block.

    Returns a deep copy with all three knobs resolved to ints.  The block is
    sampler-agnostic (any family can sit behind the service facade), so no
    cross-field checks are needed here.
    """
    if not isinstance(value, Mapping):
        raise ConfigurationError(
            f"service spec must be a mapping, got {type(value).__name__}"
        )
    service = copy.deepcopy(dict(value))
    unknown = set(service) - set(_SERVICE_DEFAULTS)
    if unknown:
        raise ConfigurationError(
            f"unknown fields in service spec: {', '.join(sorted(unknown))}"
        )
    for field_name, default in _SERVICE_DEFAULTS.items():
        service[field_name] = int(service.get(field_name, default))
    if service["staleness_rounds"] < 0:
        raise ConfigurationError(
            f"service staleness_rounds must be >= 0, got {service['staleness_rounds']}"
        )
    if service["clients"] < 0:
        raise ConfigurationError(
            f"service clients must be >= 0, got {service['clients']}"
        )
    if service["query_period"] < 1:
        raise ConfigurationError(
            f"service query_period must be >= 1, got {service['query_period']}"
        )
    return service


def _as_spec(value: Any, key: str, required_field: str) -> dict[str, Any]:
    """Deep-copy a spec mapping and check it names its family/kind."""
    if not isinstance(value, Mapping):
        raise ConfigurationError(f"{key} spec must be a mapping, got {type(value).__name__}")
    spec = copy.deepcopy(dict(value))
    if required_field not in spec:
        raise ConfigurationError(f"{key} spec {spec!r} is missing the {required_field!r} field")
    return spec


@dataclass(frozen=True)
class ScenarioConfig:
    """One fully specified attack scenario, as plain JSON-compatible data.

    Attributes
    ----------
    name / description:
        Identity, for registries and reports.
    stream_length / universe_size / epsilon:
        Scale knobs shared with :class:`~repro.experiments.config.ExperimentConfig`.
    attack_budget:
        Fraction of rounds (a prefix of the stream) played by the attack
        adversary; the rest is benign filler.  See the module docstring.
    trials / seed / workers:
        Monte-Carlo width and reproducibility knobs, passed straight to
        :class:`~repro.adversary.batch.BatchGameRunner`.
    knowledge:
        How much sampler state the adversary observes (``"full"``,
        ``"updates"`` or ``"oblivious"``).
    continuous / checkpoint_ratio:
        Play Figure 2's continuous game (with its geometric checkpoint
        schedule) instead of the endpoint game of Figure 1.
    samplers:
        Mapping of grid label to sampler spec, e.g.
        ``{"reservoir-32": {"family": "reservoir", "capacity": 32}}``.
    adversary:
        Attack spec, e.g. ``{"family": "greedy_density", "target": {...}}``.
    benign:
        Filler-element spec for post-budget rounds (defaults to uniform
        integers over the universe).
    set_system:
        Set-system spec, e.g. ``{"kind": "prefix"}`` (universe size defaults
        to ``universe_size``).
    """

    name: str
    description: str = ""
    stream_length: int = 2048
    universe_size: int = 256
    epsilon: float = 0.25
    attack_budget: float = 1.0
    trials: int = 5
    seed: int = 20200614
    knowledge: str = "full"
    continuous: bool = True
    checkpoint_ratio: float | None = None
    #: Fraction of the stream skipped before the first checkpoint.  Very
    #: early checkpoints mostly measure empty/tiny samples (an empty sample
    #: counts as error 1 by Definition 1.1), which would saturate every
    #: scenario's peak discrepancy with warmup noise instead of attack signal.
    warmup_fraction: float = 0.1
    samplers: dict[str, dict[str, Any]] = field(
        default_factory=lambda: {"reservoir-32": {"family": "reservoir", "capacity": 32}}
    )
    adversary: dict[str, Any] = field(default_factory=lambda: dict(DEFAULT_ADVERSARY_SPEC))
    benign: dict[str, Any] | None = None
    set_system: dict[str, Any] = field(default_factory=lambda: {"kind": "prefix"})
    workers: int | None = None
    #: Maximum segment length for chunked game execution (``None`` = runner
    #: default, ``1`` = the per-element path).  Chunking never changes *which*
    #: rounds the adversary controls or where checkpoints fall, so budget
    #: monotonicity is unaffected.
    chunk_size: int | None = None
    #: Decision cadence for the attack adversary (``None`` keeps the attack's
    #: own default, usually per-round): the adversary observes the sampler
    #: once every ``decision_period`` rounds and commits whole blocks in
    #: between, which is what lets chunked execution accelerate adaptive
    #: attacks.  A ``decision_period`` field inside the adversary spec
    #: overrides this scenario-level knob; oblivious adversary families
    #: ignore it (they have no decision points).  Cadence is part of the
    #: strategy — it changes the realised stream for periods > 1 — but never
    #: the attack/benign boundary or the checkpoint schedule, so budget
    #: monotonicity is preserved.
    decision_period: int | None = None
    #: Optional sharded-deployment block: when present, every sampler in the
    #: grid is wrapped in a :class:`~repro.distributed.sharded.ShardedSampler`
    #: with ``sites`` per-site copies of the sampler spec and the named
    #: routing ``strategy`` (``"random"`` by default; a mapping such as
    #: ``{"kind": "skewed", "hot_fraction": 0.9}`` passes parameters).  Only
    #: mergeable sampler families can be sharded — see
    #: :data:`repro.scenarios.builders.MERGEABLE_SAMPLER_FAMILIES`.
    sharding: dict[str, Any] | None = None
    #: Optional multi-adversary campaign: several attack specs composed over
    #: one stream instead of the single ``adversary`` (which must then stay
    #: at its default).  ``{"mode": "phased", "members": [{"adversary": ...,
    #: "start": 0.0}, ...]}`` cuts the stream into consecutive phases at the
    #: ``start`` fractions; ``{"mode": "interleaved", "stride": 16,
    #: "members": [...]}`` round-robins fixed-length slots between the
    #: members (colluding adversaries splitting the round budget).  Compiled
    #: to a :class:`~repro.adversary.campaign.CampaignAdversary`; the
    #: round -> member schedule depends only on the stream length, so budget
    #: monotonicity holds exactly as for single-adversary scenarios.
    campaign: dict[str, Any] | None = None
    #: Optional defense block applied to **every** sampler in the grid, e.g.
    #: ``{"kind": "sketch_switching", "copies": 4, "matched_space": True}``.
    #: ``oversample`` rewrites the sampler specs (Theorem 1.2); the
    #: replicated kinds wrap each built sampler in the corresponding
    #: :mod:`repro.defenses` wrapper.  With ``matched_space`` the per-copy
    #: capacity is divided by ``copies`` so the defended grid occupies the
    #: same total space as the undefended one (the honest comparison for the
    #: attack × defense × budget matrix).  Composes with ``sharding``: each
    #: site is defended, and the coordinator merges defended views copy-wise.
    defense: dict[str, Any] | None = None
    #: Optional fault-injection block for sharded deployments (requires
    #: ``sharding``): site crashes with optional recovery and a declared loss
    #: model, coordinator cache-staleness windows, and scheduled resharding,
    #: e.g. ``{"crashes": [{"site": 1, "round_fraction": 0.4,
    #: "recovery_fraction": 0.2, "loss": "replay"}]}``.  Round knobs may be
    #: absolute or stream-length fractions; the block is compiled to a
    #: :class:`~repro.distributed.faults.FaultPlan` at build time, so the
    #: schedule depends only on the stream length and faulted scenarios stay
    #: budget-monotone and bit-reproducible.
    faults: dict[str, Any] | None = None
    #: Optional service block: observe the sampler through the always-on
    #: query service facade (:class:`~repro.service.served.ServedSampler`)
    #: instead of directly.  ``{"staleness_rounds": 64, "clients": 4,
    #: "query_period": 8}`` serves adversary and checkpoint reads from a
    #: snapshot at most ``staleness_rounds`` behind ingestion, while
    #: ``clients`` background clients read every ``query_period`` rounds
    #: (for exposure-tracked defenses those reads reach the sites'
    #: ``observe_exposure`` hooks — a query flood genuinely spends the
    #: defense budget).  The read schedule is a pure function of the round
    #: index, so serviced scenarios stay bit-reproducible, budget-monotone
    #: and chunking-independent.
    service: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a scenario needs a non-empty name")
        if self.stream_length < 2:
            raise ConfigurationError(
                f"stream length must be >= 2, got {self.stream_length}"
            )
        if self.universe_size < 2:
            raise ConfigurationError(
                f"universe size must be >= 2, got {self.universe_size}"
            )
        if not 0.0 < self.epsilon < 1.0:
            raise ConfigurationError(f"epsilon must lie in (0, 1), got {self.epsilon}")
        if not 0.0 <= self.attack_budget <= 1.0:
            raise ConfigurationError(
                f"attack budget must lie in [0, 1], got {self.attack_budget}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError(
                f"warmup fraction must lie in [0, 1), got {self.warmup_fraction}"
            )
        if self.checkpoint_ratio is not None and self.checkpoint_ratio <= 0.0:
            raise ConfigurationError(
                f"checkpoint ratio must be positive, got {self.checkpoint_ratio}"
            )
        if self.trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {self.trials}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk size must be >= 1, got {self.chunk_size}"
            )
        if self.decision_period is not None and self.decision_period < 1:
            raise ConfigurationError(
                f"decision period must be >= 1, got {self.decision_period}"
            )
        if self.knowledge not in KNOWLEDGE_MODELS:
            raise ConfigurationError(
                f"unknown knowledge model {self.knowledge!r}; "
                f"expected one of {KNOWLEDGE_MODELS}"
            )
        if not self.samplers:
            raise ConfigurationError("a scenario needs at least one sampler spec")
        # Frozen dataclasses still allow attribute mutation through
        # object.__setattr__; used here only to normalise the nested specs
        # into validated deep copies.
        object.__setattr__(
            self,
            "samplers",
            {
                str(label): _as_spec(spec, f"sampler {label!r}", "family")
                for label, spec in dict(self.samplers).items()
            },
        )
        object.__setattr__(self, "adversary", _as_spec(self.adversary, "adversary", "family"))
        object.__setattr__(self, "set_system", _as_spec(self.set_system, "set_system", "kind"))
        if self.benign is not None:
            object.__setattr__(self, "benign", _as_spec(self.benign, "benign", "kind"))
        if self.sharding is not None:
            sharding = _as_spec(self.sharding, "sharding", "sites")
            unknown = set(sharding) - {"sites", "strategy"}
            if unknown:
                raise ConfigurationError(
                    f"unknown fields in sharding spec: {', '.join(sorted(unknown))}"
                )
            sites = int(sharding["sites"])
            if sites < 1:
                raise ConfigurationError(f"sharding needs at least 1 site, got {sites}")
            sharding["sites"] = sites
            strategy = sharding.get("strategy")
            if strategy is not None and not isinstance(strategy, (str, Mapping)):
                raise ConfigurationError(
                    "sharding strategy must be a name or a spec mapping, "
                    f"got {type(strategy).__name__}"
                )
            object.__setattr__(self, "sharding", sharding)
        if self.campaign is not None:
            object.__setattr__(
                self,
                "campaign",
                _validate_campaign(self.campaign, self.stream_length, self.adversary),
            )
        if self.defense is not None:
            object.__setattr__(self, "defense", _validate_defense(self.defense))
        if self.faults is not None:
            object.__setattr__(
                self,
                "faults",
                _validate_faults(self.faults, self.stream_length, self.sharding),
            )
        if self.service is not None:
            object.__setattr__(self, "service", _validate_service(self.service))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def attack_rounds(self) -> int:
        """Number of leading rounds played by the attack adversary."""
        return int(round(self.attack_budget * self.stream_length))

    @property
    def adversary_label(self) -> str:
        """Grid label of the attack: the family name, or the campaign roster.

        The label deliberately omits the budget (see
        :mod:`repro.scenarios.engine`); for campaigns it is
        ``campaign:<family>+<family>+...`` in schedule order.
        """
        if self.campaign is None:
            return str(self.adversary["family"])
        families = [
            str(member["adversary"]["family"]) for member in self.campaign["members"]
        ]
        return "campaign:" + "+".join(families)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def replace(self, **overrides: Any) -> "ScenarioConfig":
        """Return a copy with the given fields replaced (validated again)."""
        unknown = set(overrides) - {f for f in self.__dataclass_fields__}
        if unknown:
            raise ConfigurationError(
                f"unknown scenario config fields: {', '.join(sorted(unknown))}"
            )
        return dataclass_replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (``asdict`` already deep-copies every nested spec)."""
        return asdict(self)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioConfig":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown scenario config fields: {', '.join(sorted(unknown))}"
            )
        if "name" not in data:
            raise ConfigurationError("scenario config is missing the 'name' field")
        return cls(**dict(data))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError("scenario JSON must encode an object")
        return cls.from_dict(data)
