"""Execute declarative scenarios through the batched game engine.

This is deliberately a thin layer: a :class:`~repro.scenarios.config.ScenarioConfig`
is compiled to picklable factories (:mod:`repro.scenarios.builders`) and
handed to :class:`~repro.adversary.batch.BatchGameRunner`, so worker-pool
scaling, scheduling-independent seeding and the incremental discrepancy
tracker all apply to every scenario for free.  The engine's own work —
spec compilation and result aggregation — is benchmarked to stay under 10%
of a direct ``BatchGameRunner`` call (``benchmarks/bench_perf_scenarios.py``).
"""

from __future__ import annotations

import copy
import json
import time
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import Any

from ..adversary.batch import BatchCellStats, BatchGameRunner
from ..core.approximation import geometric_checkpoints
from ..exceptions import ConfigurationError
from ..experiments.tables import Table
from .builders import AdversaryFromSpec, SamplerFromSpec, build_set_system
from .config import ScenarioConfig

__all__ = ["ScenarioResult", "run_config", "sweep_config", "sweep_table"]

#: Columns of the per-cell table, in presentation order.
_CELL_COLUMNS = [
    "sampler",
    "adversary",
    "trials",
    "mean_error",
    "max_error",
    "failure_rate",
    "violation_rate",
    "peak_discrepancy",
    "attacked_peak_discrepancy",
    "mean_sample_size",
]


def _cell_record(
    stats: BatchCellStats, continuous: bool, attacked_peak: float | None
) -> dict[str, Any]:
    """Flatten one grid cell into a JSON-friendly record.

    ``peak_discrepancy`` is the cell's worst observed error: the worst
    checkpoint error for continuous games (mid-stream violations count), the
    worst endpoint error otherwise.  ``attacked_peak_discrepancy`` restricts
    that maximum to checkpoints inside the attack window (see
    :func:`_attacked_peak`).
    """
    if continuous and stats.worst_checkpoint_error is not None:
        peak = stats.worst_checkpoint_error
    else:
        peak = stats.max_error
    return {
        "attacked_peak_discrepancy": attacked_peak,
        "sampler": stats.sampler,
        "adversary": stats.adversary,
        "trials": stats.trials,
        "mean_error": stats.mean_error,
        "max_error": stats.max_error,
        "std_error": stats.std_error,
        "failure_rate": stats.failure_rate,
        "violation_rate": stats.violation_rate,
        "mean_sample_size": stats.mean_sample_size,
        "mean_max_checkpoint_error": stats.mean_max_checkpoint_error,
        "worst_checkpoint_error": stats.worst_checkpoint_error,
        "peak_discrepancy": peak,
    }


@dataclass
class ScenarioResult:
    """Structured outcome of one scenario execution.

    Attributes
    ----------
    scenario:
        Scenario name (registry key).
    config:
        The fully resolved :class:`ScenarioConfig` as plain data — enough to
        replay the run exactly.
    cells:
        One record per ``(sampler, adversary)`` grid cell with per-cell
        failure/violation rates and error statistics.
    peak_discrepancy:
        Worst observed error across all cells (checkpoint-aware for
        continuous games).
    wall_time_seconds:
        End-to-end execution time of the underlying grid run.
    """

    scenario: str
    config: dict[str, Any]
    cells: list[dict[str, Any]] = field(default_factory=list)
    peak_discrepancy: float | None = None
    #: Worst error observed at checkpoints inside the attack window; monotone
    #: non-decreasing in the attack budget for a fixed seed (see
    #: :func:`_attacked_peak`).
    attacked_peak_discrepancy: float | None = None
    #: Number of grid cells whose attacked peak is undefined (endpoint games
    #: at partial budget, zero-budget defense baselines, continuous games
    #: whose warmup swallows the whole attack window).  The scenario-level
    #: ``attacked_peak_discrepancy`` is the maximum over the *defined* cells
    #: only; this counter makes the mixed case explicit instead of silently
    #: dropping ``None`` cells (a matrix entry of 0 means "every cell
    #: contributed", not "the undefined ones vanished").
    attacked_peak_undefined_cells: int = 0
    wall_time_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def max_failure_rate(self) -> float | None:
        rates = [c["failure_rate"] for c in self.cells if c["failure_rate"] is not None]
        return max(rates) if rates else None

    @property
    def max_violation_rate(self) -> float | None:
        rates = [c["violation_rate"] for c in self.cells if c["violation_rate"] is not None]
        return max(rates) if rates else None

    # ------------------------------------------------------------------
    # Serialisation / rendering
    # ------------------------------------------------------------------
    def to_dict(self, include_timing: bool = True) -> dict[str, Any]:
        """Plain-data form; ``include_timing=False`` drops the wall time so
        two runs of the same config compare bit-for-bit."""
        data: dict[str, Any] = {
            "scenario": self.scenario,
            "config": copy.deepcopy(self.config),
            "cells": copy.deepcopy(self.cells),
            "peak_discrepancy": self.peak_discrepancy,
            "attacked_peak_discrepancy": self.attacked_peak_discrepancy,
            "attacked_peak_undefined_cells": self.attacked_peak_undefined_cells,
            "max_failure_rate": self.max_failure_rate,
            "max_violation_rate": self.max_violation_rate,
        }
        if include_timing:
            data["wall_time_seconds"] = self.wall_time_seconds
        return data

    def to_json(self, indent: int | None = 2, include_timing: bool = True) -> str:
        return json.dumps(self.to_dict(include_timing), indent=indent, sort_keys=True)

    def table(self) -> Table:
        table = Table(
            columns=list(_CELL_COLUMNS),
            title=(
                f"scenario {self.scenario} "
                f"(budget={self.config.get('attack_budget')}, "
                f"n={self.config.get('stream_length')}, "
                f"seed={self.config.get('seed')})"
            ),
        )
        for cell in self.cells:
            table.add_row({column: _blank_none(cell.get(column)) for column in _CELL_COLUMNS})
        return table

    def to_text(self) -> str:
        lines = [self.table().to_text()]
        lines.append(
            f"peak discrepancy {_format_optional(self.peak_discrepancy)}  "
            f"wall time {self.wall_time_seconds:.3f}s"
        )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        header = f"### scenario: {self.scenario}\n\n"
        footer = (
            f"\n\n- peak discrepancy: {_format_optional(self.peak_discrepancy)}"
            f"\n- wall time: {self.wall_time_seconds:.3f}s"
        )
        return header + self.table().to_markdown() + footer


def _blank_none(value: Any) -> Any:
    return "" if value is None else value


def _format_optional(value: float | None) -> str:
    return "n/a" if value is None else f"{value:.4f}"


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _checkpoints(config: ScenarioConfig) -> tuple[int, ...] | None:
    """Geometric checkpoint schedule starting after the warmup prefix.

    Budget-independent by construction (it depends only on stream length and
    ratio), so runs at different budgets are judged at identical rounds —
    the alignment the monotonicity property relies on.
    """
    if not config.continuous:
        return None
    ratio = config.checkpoint_ratio
    if ratio is None:
        ratio = config.epsilon / 4.0
    first = max(1, int(round(config.warmup_fraction * config.stream_length)))
    return tuple(geometric_checkpoints(first, config.stream_length, ratio))


def run_config(config: ScenarioConfig) -> ScenarioResult:
    """Execute one fully specified scenario through :class:`BatchGameRunner`."""
    set_system = build_set_system(config.set_system, config.universe_size)
    # One schedule for both the runner and the attacked-peak bookkeeping:
    # _attacked_peak indexes checkpoint_errors by position in this tuple.
    checkpoints = _checkpoints(config)
    runner = BatchGameRunner(
        config.stream_length,
        set_system=set_system,
        epsilon=config.epsilon,
        knowledge=config.knowledge,  # type: ignore[arg-type]
        continuous=config.continuous,
        checkpoints=checkpoints,
        seed=config.seed,
        workers=config.workers,
        chunk_size=config.chunk_size,
    )
    samplers = {
        label: SamplerFromSpec(
            spec,
            sharding=config.sharding,
            defense=config.defense,
            faults=config.faults,
            stream_length=config.stream_length,
            service=config.service,
        )
        for label, spec in config.samplers.items()
    }
    # The adversary label deliberately omits the budget: per-trial substreams
    # derive from (seed, trial, label, role), so runs that differ only in
    # budget share identical randomness over the common attack prefix.
    # Campaign configs get the roster label ("campaign:spam+poison"-style).
    adversaries = {config.adversary_label: AdversaryFromSpec(config)}
    start = time.perf_counter()  # repro: noqa[DET001]: wall-time reporting only; never feeds sampler or adversary state
    by_cell = runner.run_grid_outcomes(samplers, adversaries, config.trials)
    wall_time = time.perf_counter() - start  # repro: noqa[DET001]: wall-time reporting only; never feeds sampler or adversary state
    records = []
    for outcomes in by_cell.values():
        stats = BatchCellStats.from_outcomes(outcomes, config.epsilon)
        attacked = _attacked_peak(outcomes, checkpoints, config)
        records.append(_cell_record(stats, config.continuous, attacked))
    peaks = [r["peak_discrepancy"] for r in records if r["peak_discrepancy"] is not None]
    attacked_peak, undefined_cells = _reduce_attacked_peaks(records)
    return ScenarioResult(
        scenario=config.name,
        config=config.to_dict(),
        cells=records,
        peak_discrepancy=max(peaks) if peaks else None,
        attacked_peak_discrepancy=attacked_peak,
        attacked_peak_undefined_cells=undefined_cells,
        wall_time_seconds=wall_time,
    )


def _reduce_attacked_peaks(
    records: Sequence[dict[str, Any]],
) -> tuple[float | None, int]:
    """Reduce per-cell attacked peaks to ``(max over defined, undefined count)``.

    A cell's ``attacked_peak_discrepancy`` is ``None`` when no checkpoint
    falls inside its attack window (see :func:`_attacked_peak`) — e.g. an
    endpoint game at partial budget, or a zero-budget defense baseline in a
    defense matrix.  Mixing defined and undefined cells is legitimate, but
    must be visible: the maximum is taken over the defined cells and the
    undefined ones are *counted*, never silently discarded.
    """
    defined = [
        r["attacked_peak_discrepancy"]
        for r in records
        if r["attacked_peak_discrepancy"] is not None
    ]
    undefined_cells = len(records) - len(defined)
    return (max(defined) if defined else None, undefined_cells)


def _attacked_peak(
    outcomes: Sequence[Any],
    checkpoints: tuple[int, ...] | None,
    config: ScenarioConfig,
) -> float | None:
    """Worst error observed *while the adversary was active*.

    For continuous games this is the maximum checkpoint error over the
    checkpoints at or before ``attack_rounds``; for endpoint games it is the
    final error when the whole stream was attacked (``None`` otherwise —
    the endpoint of a partially attacked stream measures the benign tail
    too).  Because checkpoint schedules and per-trial substreams are
    budget-independent, a lower-budget run observes a *prefix subset* of a
    higher-budget run's attacked checkpoints with identical errors, which
    makes this quantity monotone non-decreasing in the budget for any fixed
    seed — the invariant ``tests/test_scenarios_attacks.py`` pins.
    """
    attack_rounds = config.attack_rounds
    if not config.continuous:
        if attack_rounds >= config.stream_length:
            errors = [o.error for o in outcomes if o.error is not None]
            return max(errors) if errors else None
        return None
    if checkpoints is None:
        return None
    live = [i for i, checkpoint in enumerate(checkpoints) if checkpoint <= attack_rounds]
    if not live:
        return None
    peak: float | None = None
    for outcome in outcomes:
        errors = outcome.checkpoint_errors
        for index in live:
            if index < len(errors) and (peak is None or errors[index] > peak):
                peak = errors[index]
    return peak


def sweep_config(
    config: ScenarioConfig,
    budgets: Iterable[float] | None = None,
    seeds: Iterable[int] | None = None,
) -> list[ScenarioResult]:
    """Run a ``(budget × seed)`` grid of one scenario (samplers sweep within).

    Each ``(budget, seed)`` point is an independent :func:`run_config` call;
    the sampler grid inside the config is swept by the batch runner itself,
    so the full sweep is ``budget × sampler × seed`` as one composition.
    """
    budget_grid = [config.attack_budget] if budgets is None else [float(b) for b in budgets]
    seed_grid = [config.seed] if seeds is None else [int(s) for s in seeds]
    if not budget_grid or not seed_grid:
        raise ConfigurationError("sweep grids must be non-empty")
    return [
        run_config(config.replace(attack_budget=budget, seed=seed))
        for budget in budget_grid
        for seed in seed_grid
    ]


def sweep_table(results: Sequence[ScenarioResult]) -> Table:
    """Summarise a sweep: one row per (budget, seed, sampler) cell."""
    table = Table(
        columns=["budget", "seed", "sampler", "mean_error", "peak_discrepancy", "violation_rate"],
        title=f"sweep: {results[0].scenario}" if results else "sweep",
    )
    for result in results:
        for cell in result.cells:
            table.add_row(
                [
                    result.config.get("attack_budget"),
                    result.config.get("seed"),
                    cell["sampler"],
                    _blank_none(cell["mean_error"]),
                    _blank_none(cell["peak_discrepancy"]),
                    _blank_none(cell["violation_rate"]),
                ]
            )
    return table
