"""Sample-based range counting over grid universes (Section 1.2, "Range queries").

With ``R`` the axis-aligned boxes over ``U = [m]^d``, an epsilon-approximation
``S`` of the stream answers every box-counting query within ``epsilon * n``:
the estimate is simply ``d_R(S) * n``.  Because ``ln |R| = O(d ln m)``, the
adaptive sample size is ``O((d ln m + ln(1/delta)) / epsilon^2)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import Literal

from ..core.bounds import bernoulli_adaptive_rate, reservoir_adaptive_size
from ..exceptions import ConfigurationError, EmptySampleError
from ..rng import RandomState
from ..samplers import BernoulliSampler, ReservoirSampler, StreamSampler
from ..setsystems.rectangles import Box


def exact_range_count(points: Sequence[tuple], box: Box) -> int:
    """Ground truth: number of stream points inside the box."""
    return sum(1 for point in points if point in box)


@dataclass(frozen=True)
class RangeQueryResult:
    """One answered range query: the estimate, the truth and the normalised error."""

    box: Box
    estimate: float
    exact: int
    stream_length: int

    @property
    def normalized_error(self) -> float:
        """``|estimate - exact| / n`` — the quantity bounded by epsilon."""
        if self.stream_length == 0:
            return 0.0
        return abs(self.estimate - self.exact) / self.stream_length


class SampleRangeCounter:
    """Streaming range-count estimator backed by a robust random sample.

    Parameters
    ----------
    side / dimension:
        The grid universe ``[side]^dimension``.
    epsilon / delta:
        Target additive error (as a fraction of ``n``) and failure probability.
    stream_length:
        Needed for the Bernoulli mechanism.
    mechanism:
        ``"reservoir"`` (default) or ``"bernoulli"``.
    """

    def __init__(
        self,
        side: int,
        dimension: int,
        epsilon: float,
        delta: float,
        stream_length: int | None = None,
        mechanism: Literal["reservoir", "bernoulli"] = "reservoir",
        seed: RandomState = None,
    ) -> None:
        if side < 2:
            raise ConfigurationError(f"grid side must be >= 2, got {side}")
        if dimension < 1:
            raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
        self.side = int(side)
        self.dimension = int(dimension)
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        log_cardinality = dimension * math.log(side * (side + 1) / 2)
        if mechanism == "reservoir":
            bound = reservoir_adaptive_size(log_cardinality, epsilon, delta)
            self._sampler: StreamSampler = ReservoirSampler(bound.size, seed=seed)
        elif mechanism == "bernoulli":
            if stream_length is None:
                raise ConfigurationError(
                    "Bernoulli-based range counters need the stream length up front"
                )
            bound = bernoulli_adaptive_rate(log_cardinality, epsilon, delta, stream_length)
            assert bound.probability is not None
            self._sampler = BernoulliSampler(bound.probability, seed=seed)
        else:
            raise ConfigurationError(f"unknown mechanism {mechanism!r}")
        self.sample_size_bound = bound
        self._count = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def update(self, point: tuple) -> None:
        """Process one stream point (a ``dimension``-tuple of grid coordinates)."""
        point = tuple(point)
        if len(point) != self.dimension:
            raise ConfigurationError(
                f"expected {self.dimension}-dimensional points, got {point!r}"
            )
        self._sampler.process(point)
        self._count += 1

    def extend(self, points: Iterable[tuple]) -> None:
        """Process a batch of stream points.

        Validates the batch up front, then routes through the sampler's
        vectorised ``extend`` with the per-element records suppressed.
        """
        points = [tuple(point) for point in points]
        for point in points:
            if len(point) != self.dimension:
                raise ConfigurationError(
                    f"expected {self.dimension}-dimensional points, got {point!r}"
                )
        self._sampler.extend(points, updates=False)
        self._count += len(points)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def count(self, box: Box) -> float:
        """Estimate the number of stream points inside ``box``."""
        sample = self._sampler.sample
        if len(sample) == 0:
            raise EmptySampleError("the counter has not retained any point yet")
        density = sum(1 for point in sample if point in box) / len(sample)
        return density * self._count

    def answer(self, box: Box, stream: Sequence[tuple]) -> RangeQueryResult:
        """Answer a query and package it with the exact count for evaluation."""
        return RangeQueryResult(
            box=box,
            estimate=self.count(box),
            exact=exact_range_count(stream, box),
            stream_length=len(stream),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sampler(self) -> StreamSampler:
        """The underlying sampler."""
        return self._sampler

    @property
    def count_processed(self) -> int:
        """Number of stream points processed."""
        return self._count
