"""Robust quantile estimation from samples (Corollary 1.5).

If a sample ``S`` is an epsilon-approximation of the stream ``X`` with respect
to the prefix system, then the rank of *every* element is preserved up to
``epsilon * n`` simultaneously, so every quantile of the sample is an
epsilon-approximate quantile of the stream.  :class:`RobustQuantileSketch`
packages a Bernoulli or reservoir sampler sized per Corollary 1.5 behind a
quantile-sketch interface, and the helper functions measure quantile/rank
errors for the experiments.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Literal

from ..core.bounds import bernoulli_adaptive_rate, reservoir_adaptive_size
from ..exceptions import ConfigurationError, EmptySampleError
from ..rng import RandomState
from ..samplers import BernoulliSampler, ReservoirSampler, StreamSampler


def rank_of(sequence: Sequence[float], value: float) -> int:
    """The paper's rank: the number of stream elements ``<= value``."""
    return sum(1 for element in sequence if element <= value)


def empirical_quantile(sequence: Sequence[float], fraction: float) -> float:
    """The smallest element whose rank is at least ``fraction * len(sequence)``."""
    if len(sequence) == 0:
        raise EmptySampleError("cannot take a quantile of an empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must lie in [0, 1], got {fraction}")
    ordered = sorted(sequence)
    index = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[index]


def quantile_rank_error(
    stream: Sequence[float], sample: Sequence[float], fraction: float
) -> float:
    """Normalised rank error of the sample's ``fraction``-quantile within the stream.

    The sample's ``fraction``-quantile ``q_S`` is correct when its rank range
    within the stream — ``[#\\{x < q_S\\}, #\\{x <= q_S\\}] / n``, a range
    because of ties — contains ``fraction``; otherwise the error is the
    distance from ``fraction`` to that range.  Corollary 1.5 bounds this
    quantity by ``epsilon``.
    """
    if len(stream) == 0:
        raise EmptySampleError("cannot evaluate against an empty stream")
    estimate = empirical_quantile(sample, fraction)
    below = sum(1 for element in stream if element < estimate) / len(stream)
    at_or_below = rank_of(stream, estimate) / len(stream)
    if below <= fraction <= at_or_below:
        return 0.0
    return min(abs(fraction - below), abs(fraction - at_or_below))


def worst_quantile_error(
    stream: Sequence[float],
    sample: Sequence[float],
    fractions: Iterable[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
) -> float:
    """Maximum rank error over a set of quantile fractions (simultaneity check)."""
    return max(quantile_rank_error(stream, sample, fraction) for fraction in fractions)


class RobustQuantileSketch:
    """Quantile sketch backed by an adversarially robust random sample.

    Parameters
    ----------
    universe_size:
        Size ``|U|`` of the ordered universe; Corollary 1.5's sample size uses
        ``ln |U|``.
    epsilon / delta:
        Target rank accuracy and failure probability.
    stream_length:
        Expected stream length (needed to size Bernoulli sampling; the
        reservoir variant ignores it).
    mechanism:
        ``"reservoir"`` (default) or ``"bernoulli"``.
    seed:
        Randomness for the underlying sampler.
    """

    def __init__(
        self,
        universe_size: int,
        epsilon: float,
        delta: float,
        stream_length: int | None = None,
        mechanism: Literal["reservoir", "bernoulli"] = "reservoir",
        seed: RandomState = None,
    ) -> None:
        if universe_size < 2:
            raise ConfigurationError(f"universe size must be >= 2, got {universe_size}")
        self.universe_size = int(universe_size)
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.mechanism = mechanism
        log_universe = math.log(self.universe_size)
        if mechanism == "reservoir":
            bound = reservoir_adaptive_size(log_universe, epsilon, delta)
            self._sampler: StreamSampler = ReservoirSampler(bound.size, seed=seed)
        elif mechanism == "bernoulli":
            if stream_length is None:
                raise ConfigurationError(
                    "Bernoulli-based quantile sketches need the stream length up front"
                )
            bound = bernoulli_adaptive_rate(log_universe, epsilon, delta, stream_length)
            assert bound.probability is not None
            self._sampler = BernoulliSampler(bound.probability, seed=seed)
        else:
            raise ConfigurationError(f"unknown mechanism {mechanism!r}")
        self.sample_size_bound = bound
        self._count = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def update(self, value: float) -> None:
        """Insert one stream element."""
        self._sampler.process(value)
        self._count += 1

    def extend(self, values: Iterable[float]) -> None:
        """Insert a batch of stream elements.

        Routes through the sampler's vectorised ``extend`` with the
        per-element update records suppressed — nothing here reads them.
        """
        values = list(values)
        self._sampler.extend(values, updates=False)
        self._count += len(values)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def quantile(self, fraction: float) -> float:
        """An element whose stream rank is within ``epsilon * n`` of ``fraction * n``."""
        sample = self._sampler.sample
        if len(sample) == 0:
            raise EmptySampleError("the sketch has not retained any element yet")
        return empirical_quantile(list(sample), fraction)

    def median(self) -> float:
        """Approximate median of the stream."""
        return self.quantile(0.5)

    def rank_estimate(self, value: float) -> float:
        """Estimated number of stream elements ``<= value``."""
        sample = self._sampler.sample
        if len(sample) == 0:
            raise EmptySampleError("the sketch has not retained any element yet")
        return rank_of(list(sample), value) / len(sample) * self._count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sampler(self) -> StreamSampler:
        """The underlying sampler (exposed because the adversary may watch it)."""
        return self._sampler

    @property
    def count(self) -> int:
        """Number of stream elements processed so far."""
        return self._count

    def memory_footprint(self) -> int:
        """Number of retained stream elements."""
        return self._sampler.memory_footprint()
