"""Approximate center points from samples (Section 1.2, "Center points").

A point ``c`` is a *beta-center point* of a point set ``X`` if every closed
halfspace containing ``c`` contains at least ``beta |X|`` points of ``X``.
The paper (citing [CEM+96, Lemma 6.1]) notes that an epsilon-approximation
with respect to halfspaces transfers center points between the sample and the
stream: with ``epsilon = beta / 5``, a ``6 beta / 5``-center of the sample is
a ``beta``-center of the stream.

The geometric primitive needed is *Tukey depth* (the minimum, over halfspaces
through a point, of the fraction of data on the other side).  Exact Tukey
depth is itself a non-trivial computation in higher dimensions; this module
evaluates it over a dense grid of directions (exact in 1-D, where two
directions suffice), which is the standard practical surrogate and is
documented as such in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..exceptions import ConfigurationError, EmptySampleError
from ..rng import RandomState, ensure_generator


def _as_array(points: Sequence) -> np.ndarray:
    array = np.asarray([tuple(point) for point in points], dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    return array


def direction_grid(dimension: int, count: int, seed: RandomState = None) -> np.ndarray:
    """Unit directions used to probe halfspaces (exact for ``dimension == 1``)."""
    if dimension < 1:
        raise ConfigurationError(f"dimension must be >= 1, got {dimension}")
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if dimension == 1:
        return np.array([[1.0], [-1.0]])
    if dimension == 2:
        angles = np.linspace(0.0, 2.0 * math.pi, count, endpoint=False)
        return np.stack([np.cos(angles), np.sin(angles)], axis=1)
    rng = ensure_generator(seed)
    directions = rng.normal(size=(count, dimension))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return directions / norms


def tukey_depth(
    point: Sequence[float],
    points: Sequence,
    directions: np.ndarray | None = None,
    num_directions: int = 64,
    seed: RandomState = None,
) -> float:
    """Approximate Tukey depth of ``point`` within ``points`` (fraction in [0, 1]).

    The depth is the minimum, over the probed directions, of the fraction of
    data points lying in the closed halfspace on the far side of ``point``.
    A ``beta``-center point is precisely a point of depth at least ``beta``.
    """
    data = _as_array(points)
    if len(data) == 0:
        raise EmptySampleError("cannot compute depth within an empty point set")
    query = np.asarray(tuple(point) if hasattr(point, "__len__") else (point,), dtype=float)
    if directions is None:
        directions = direction_grid(data.shape[1], num_directions, seed)
    projections = data @ directions.T
    query_projection = query @ directions.T
    # For each direction, the fraction of points on the "greater or equal"
    # side of the query; the depth is the minimum over directions.
    fractions = (projections >= query_projection - 1e-12).mean(axis=0)
    return float(fractions.min())


def is_beta_center(
    point: Sequence[float],
    points: Sequence,
    beta: float,
    directions: np.ndarray | None = None,
    num_directions: int = 64,
) -> bool:
    """Check whether ``point`` is a ``beta``-center of ``points`` (via probed depth)."""
    if not 0.0 < beta <= 0.5 + 1e-9:
        raise ConfigurationError(f"beta must lie in (0, 0.5], got {beta}")
    return tukey_depth(point, points, directions, num_directions) >= beta - 1e-12


def deepest_point(
    points: Sequence,
    candidates: Sequence | None = None,
    num_directions: int = 64,
    seed: RandomState = None,
) -> tuple[tuple[float, ...], float]:
    """Return the candidate of maximum (approximate) Tukey depth and its depth.

    By default the candidates are the points themselves plus the coordinate-wise
    median, which in low dimensions reliably contains a point of depth close to
    the maximum possible (``>= 1 / (d + 1)`` is always achievable).
    """
    data = _as_array(points)
    if len(data) == 0:
        raise EmptySampleError("cannot find a center of an empty point set")
    directions = direction_grid(data.shape[1], num_directions, seed)
    if candidates is None:
        median = tuple(float(v) for v in np.median(data, axis=0))
        candidate_list = [tuple(float(c) for c in row) for row in data]
        candidate_list.append(median)
    else:
        candidate_list = [tuple(float(c) for c in np.atleast_1d(np.asarray(candidate, dtype=float)))
                          for candidate in candidates]
    best_point = candidate_list[0]
    best_depth = -1.0
    for candidate in candidate_list:
        depth = tukey_depth(candidate, points, directions)
        if depth > best_depth:
            best_depth = depth
            best_point = candidate
    return best_point, best_depth


@dataclass(frozen=True)
class CenterPointResult:
    """A center point computed from a sample, evaluated on the full stream."""

    point: tuple[float, ...]
    sample_depth: float
    stream_depth: float
    beta: float

    @property
    def valid_for_stream(self) -> bool:
        """Did the sample's center transfer to the stream as a beta-center?"""
        return self.stream_depth >= self.beta - 1e-12


def center_from_sample(
    sample: Sequence,
    stream: Sequence,
    beta: float,
    num_directions: int = 64,
    seed: RandomState = None,
) -> CenterPointResult:
    """Compute a ``(6/5) beta``-center of the sample and evaluate it on the stream.

    This is the paper's recipe with ``epsilon = beta / 5``: if the sample is an
    ``epsilon``-approximation with respect to halfspaces, the returned point is
    guaranteed to be a ``beta``-center of the stream.
    """
    if not 0.0 < beta <= 0.5:
        raise ConfigurationError(f"beta must lie in (0, 0.5], got {beta}")
    point, sample_depth = deepest_point(sample, num_directions=num_directions, seed=seed)
    stream_depth = tukey_depth(point, stream, num_directions=num_directions, seed=seed)
    return CenterPointResult(
        point=point, sample_depth=sample_depth, stream_depth=stream_depth, beta=beta
    )
