"""Distributed-database load-balancing scenario (Section 1.2).

A front-end receives a stream of queries and routes each to one of ``K``
query-processing servers uniformly at random.  Each server later uses its
received substream for query optimisation, so each substream should represent
the global workload.  Because each substream is a Bernoulli(1/K) sample of
the stream, Theorem 1.2 says the representation survives even an adaptive
client, provided ``n / K >= 10 (ln|R| + ln(4 K / delta)) / epsilon^2`` (the
extra ``ln K`` comes from union-bounding over the servers).

:func:`simulate_load_balancing` runs the scenario end to end and reports, per
server, the worst-range discrepancy between its substream and the global
stream; experiment E12 sweeps the number of servers and the workload type.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable
from typing import Any

from ..adversary.base import Adversary
from ..distributed.partitioned import RandomRouter
from ..exceptions import ConfigurationError
from ..rng import RandomState
from ..setsystems.base import SetSystem


@dataclass(frozen=True)
class LoadBalancingReport:
    """Result of one load-balancing simulation.

    Attributes
    ----------
    num_servers:
        Number of servers ``K``.
    stream_length:
        Total number of routed queries.
    per_server_errors:
        Worst-range discrepancy of each server's substream vs the global stream
        (servers that received nothing score 1.0).
    per_server_loads:
        Number of queries each server received.
    load_imbalance:
        Max deviation of any server's load share from ``1 / K``.
    """

    num_servers: int
    stream_length: int
    per_server_errors: tuple[float, ...]
    per_server_loads: tuple[int, ...]
    load_imbalance: float

    @property
    def worst_error(self) -> float:
        return max(self.per_server_errors) if self.per_server_errors else 0.0

    @property
    def mean_error(self) -> float:
        if not self.per_server_errors:
            return 0.0
        return sum(self.per_server_errors) / len(self.per_server_errors)

    def servers_within(self, epsilon: float) -> int:
        """Number of servers whose substream is an epsilon-approximation."""
        return sum(1 for error in self.per_server_errors if error <= epsilon)


def required_stream_length(
    num_servers: int, log_cardinality: float, epsilon: float, delta: float
) -> int:
    """Stream length after which every server's substream should be representative.

    Derived from Theorem 1.2's Bernoulli bound with rate ``1 / K`` and a union
    bound over the ``K`` servers.
    """
    if num_servers < 2:
        raise ConfigurationError(f"need at least 2 servers, got {num_servers}")
    if not 0.0 < epsilon < 1.0 or not 0.0 < delta < 1.0:
        raise ConfigurationError("epsilon and delta must lie in (0, 1)")
    per_server = 10.0 * (log_cardinality + math.log(4.0 * num_servers / delta)) / epsilon**2
    return int(math.ceil(per_server * num_servers))


def simulate_load_balancing(
    queries: Iterable[Any] | None,
    num_servers: int,
    set_system: SetSystem,
    adversary: Adversary | None = None,
    stream_length: int | None = None,
    seed: RandomState = None,
) -> LoadBalancingReport:
    """Route a query stream across servers and measure per-server representativeness.

    Exactly one of ``queries`` (a static workload) or ``adversary`` +
    ``stream_length`` (an adaptive client) must be provided.  The adaptive
    client learns, after each query, which server received it and observes
    that server's accumulated substream before choosing its next query — the
    natural analogue of full-state knowledge in the sampling game (observing
    the union of all servers is information-equivalent to remembering one's
    own stream, so showing the receiving server is the interesting part).
    """
    if (queries is None) == (adversary is None):
        raise ConfigurationError("provide exactly one of `queries` or `adversary`")
    router = RandomRouter(num_servers, seed=seed)
    if queries is not None:
        router.route_all(queries)
    else:
        assert adversary is not None
        if stream_length is None or stream_length < 1:
            raise ConfigurationError("an adversarial client needs a positive stream_length")
        observed_server = 0
        for round_index in range(1, stream_length + 1):
            observed = router.servers[observed_server].received
            query = adversary.next_element(round_index, observed)
            observed_server = router.route(query)
    errors = []
    for server in router.servers:
        if not server.received:
            errors.append(1.0)
        else:
            errors.append(set_system.max_discrepancy(router.stream, server.received).error)
    return LoadBalancingReport(
        num_servers=num_servers,
        stream_length=len(router.stream),
        per_server_errors=tuple(errors),
        per_server_loads=tuple(router.loads()),
        load_imbalance=router.load_imbalance(),
    )
