"""Sample-based heavy hitters in the adversarial model (Corollary 1.6).

The algorithm is exactly the paper's: compute an ``epsilon' = epsilon / 3``
approximation ``S`` of the stream with respect to the singleton system and
output every element whose density in ``S`` is at least ``alpha - epsilon'``.
Every element with stream density ``>= alpha`` is then reported, and no
element with stream density ``<= alpha - epsilon`` is.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import Any, Literal

from ..core.bounds import bernoulli_adaptive_rate, reservoir_adaptive_size
from ..exceptions import ConfigurationError, EmptySampleError
from ..rng import RandomState
from ..samplers import BernoulliSampler, ReservoirSampler, StreamSampler


def exact_heavy_hitters(stream: Sequence[Any], threshold_fraction: float) -> set:
    """Ground truth: elements appearing in at least ``threshold_fraction`` of the stream."""
    if not stream:
        raise EmptySampleError("cannot compute heavy hitters of an empty stream")
    if not 0.0 < threshold_fraction <= 1.0:
        raise ConfigurationError(
            f"threshold fraction must lie in (0, 1], got {threshold_fraction}"
        )
    counts = Counter(stream)
    cutoff = threshold_fraction * len(stream)
    return {element for element, count in counts.items() if count >= cutoff}


@dataclass(frozen=True)
class HeavyHitterEvaluation:
    """Outcome of judging a reported heavy-hitter list against the promise of Cor. 1.6.

    ``missed_heavy`` are true heavy hitters (density >= alpha) absent from the
    report — these are hard errors.  ``spurious_light`` are reported elements
    with density <= alpha - epsilon — also hard errors.  Elements in the grey
    zone (alpha - epsilon, alpha) may legitimately appear either way.
    """

    reported: frozenset
    missed_heavy: frozenset
    spurious_light: frozenset

    @property
    def correct(self) -> bool:
        """True when the report satisfies the (alpha, epsilon) promise exactly."""
        return not self.missed_heavy and not self.spurious_light


def evaluate_heavy_hitters(
    reported: Iterable[Any],
    stream: Sequence[Any],
    alpha: float,
    epsilon: float,
) -> HeavyHitterEvaluation:
    """Judge a heavy-hitter report against the paper's correctness promise."""
    if not 0.0 < epsilon < alpha <= 1.0:
        raise ConfigurationError(
            f"need 0 < epsilon < alpha <= 1, got alpha={alpha}, epsilon={epsilon}"
        )
    reported_set = frozenset(reported)
    counts = Counter(stream)
    n = len(stream)
    heavy = {element for element, count in counts.items() if count / n >= alpha}
    missed = frozenset(heavy - reported_set)
    # A reported element is a hard error when its stream density (zero if it
    # never appeared at all) is at most alpha - epsilon.
    spurious = frozenset(
        element
        for element in reported_set
        if counts.get(element, 0) / n <= alpha - epsilon
    )
    return HeavyHitterEvaluation(
        reported=reported_set, missed_heavy=missed, spurious_light=spurious
    )


class SampleHeavyHitters:
    """Streaming heavy-hitters detector backed by a robust random sample.

    Parameters
    ----------
    universe_size:
        ``|U|``; the singleton system has cardinality ``|U|`` so the sample
        size uses ``ln |U|``.
    alpha:
        Heaviness threshold (report elements with density ``>= alpha``).
    epsilon:
        Error margin (never report elements with density ``<= alpha - epsilon``).
    delta:
        Failure probability.
    stream_length:
        Needed for the Bernoulli mechanism.
    mechanism:
        ``"reservoir"`` (default) or ``"bernoulli"``.
    """

    def __init__(
        self,
        universe_size: int,
        alpha: float,
        epsilon: float,
        delta: float,
        stream_length: int | None = None,
        mechanism: Literal["reservoir", "bernoulli"] = "reservoir",
        seed: RandomState = None,
    ) -> None:
        if not 0.0 < epsilon < alpha <= 1.0:
            raise ConfigurationError(
                f"need 0 < epsilon < alpha <= 1, got alpha={alpha}, epsilon={epsilon}"
            )
        if universe_size < 2:
            raise ConfigurationError(f"universe size must be >= 2, got {universe_size}")
        self.universe_size = int(universe_size)
        self.alpha = float(alpha)
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        #: The approximation accuracy used internally (the paper's epsilon').
        self.approximation_epsilon = epsilon / 3.0
        log_universe = math.log(self.universe_size)
        if mechanism == "reservoir":
            bound = reservoir_adaptive_size(log_universe, self.approximation_epsilon, delta)
            self._sampler: StreamSampler = ReservoirSampler(bound.size, seed=seed)
        elif mechanism == "bernoulli":
            if stream_length is None:
                raise ConfigurationError(
                    "Bernoulli-based heavy hitters need the stream length up front"
                )
            bound = bernoulli_adaptive_rate(
                log_universe, self.approximation_epsilon, delta, stream_length
            )
            assert bound.probability is not None
            self._sampler = BernoulliSampler(bound.probability, seed=seed)
        else:
            raise ConfigurationError(f"unknown mechanism {mechanism!r}")
        self.sample_size_bound = bound
        self._count = 0

    # ------------------------------------------------------------------
    # Streaming interface
    # ------------------------------------------------------------------
    def update(self, element: Any) -> None:
        """Process one stream element."""
        self._sampler.process(element)
        self._count += 1

    def extend(self, elements: Iterable[Any]) -> None:
        """Process a batch of stream elements.

        Routes through the sampler's vectorised ``extend`` with the
        per-element update records suppressed — nothing here reads them.
        """
        elements = list(elements)
        self._sampler.extend(elements, updates=False)
        self._count += len(elements)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def report(self) -> set:
        """Return the elements whose sample density is at least ``alpha - epsilon'``."""
        sample = list(self._sampler.sample)
        if not sample:
            return set()
        counts = Counter(sample)
        cutoff = (self.alpha - self.approximation_epsilon) * len(sample)
        return {element for element, count in counts.items() if count >= cutoff}

    def estimated_density(self, element: Any) -> float:
        """Estimated stream density of ``element`` from the sample."""
        sample = list(self._sampler.sample)
        if not sample:
            raise EmptySampleError("the detector has not retained any element yet")
        return sum(1 for item in sample if item == element) / len(sample)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def sampler(self) -> StreamSampler:
        """The underlying sampler (its state is what an adversary observes)."""
        return self._sampler

    @property
    def count(self) -> int:
        """Number of stream elements processed."""
        return self._count
