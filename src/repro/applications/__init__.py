"""Applications of robust epsilon-approximations (Section 1.2 of the paper)."""

from .center_points import (
    CenterPointResult,
    center_from_sample,
    deepest_point,
    is_beta_center,
    tukey_depth,
)
from .clustering import (
    ClusteringResult,
    SampleClusteringComparison,
    compare_sample_clustering,
    greedy_k_center,
    k_center_cost,
    kmeans,
    kmeans_cost,
)
from .heavy_hitters import (
    HeavyHitterEvaluation,
    SampleHeavyHitters,
    evaluate_heavy_hitters,
    exact_heavy_hitters,
)
from .load_balancing import (
    LoadBalancingReport,
    required_stream_length,
    simulate_load_balancing,
)
from .quantiles import (
    RobustQuantileSketch,
    empirical_quantile,
    quantile_rank_error,
    rank_of,
    worst_quantile_error,
)
from .range_queries import RangeQueryResult, SampleRangeCounter, exact_range_count

__all__ = [
    "CenterPointResult",
    "ClusteringResult",
    "HeavyHitterEvaluation",
    "LoadBalancingReport",
    "RangeQueryResult",
    "RobustQuantileSketch",
    "SampleClusteringComparison",
    "SampleHeavyHitters",
    "SampleRangeCounter",
    "center_from_sample",
    "compare_sample_clustering",
    "deepest_point",
    "empirical_quantile",
    "evaluate_heavy_hitters",
    "exact_heavy_hitters",
    "exact_range_count",
    "greedy_k_center",
    "is_beta_center",
    "k_center_cost",
    "kmeans",
    "kmeans_cost",
    "quantile_rank_error",
    "rank_of",
    "required_stream_length",
    "simulate_load_balancing",
    "tukey_depth",
    "worst_quantile_error",
]
