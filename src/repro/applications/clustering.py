"""Clustering on a sample instead of the full stream (Section 1.2, "Clustering").

The paper's suggestion is generic: sample the stream (robustly, so even an
adversary cannot bias the sample), run any clustering algorithm on the small
sample, and extrapolate to the full data.  This module supplies the pieces the
experiment needs:

* a small, dependency-free Lloyd's k-means (on numpy arrays),
* a greedy 2-approximate k-center (Gonzalez), and
* helpers to measure the cost of a set of centres on the full stream, so that
  "cluster the sample" can be compared quantitatively against "cluster
  everything".
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..exceptions import ConfigurationError, EmptySampleError
from ..rng import RandomState, ensure_generator


def _as_array(points: Sequence) -> np.ndarray:
    array = np.asarray([tuple(point) for point in points], dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if len(array) == 0:
        raise EmptySampleError("cannot cluster an empty point set")
    return array


@dataclass(frozen=True)
class ClusteringResult:
    """Centres produced by a clustering run plus its cost on the training points."""

    centers: np.ndarray
    cost: float
    iterations: int


def kmeans(
    points: Sequence,
    num_clusters: int,
    max_iterations: int = 50,
    seed: RandomState = None,
) -> ClusteringResult:
    """Lloyd's k-means with k-means++-style seeding.

    Cost is the mean squared distance of each point to its nearest centre
    (normalising by the number of points keeps sample and stream costs
    comparable).
    """
    data = _as_array(points)
    if num_clusters < 1:
        raise ConfigurationError(f"num_clusters must be >= 1, got {num_clusters}")
    if num_clusters > len(data):
        raise ConfigurationError(
            f"cannot find {num_clusters} clusters among {len(data)} points"
        )
    rng = ensure_generator(seed)
    centers = _kmeans_plus_plus_init(data, num_clusters, rng)
    assignments = np.zeros(len(data), dtype=int)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        distances = _pairwise_squared_distances(data, centers)
        new_assignments = np.argmin(distances, axis=1)
        if iterations > 1 and np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        for cluster in range(num_clusters):
            members = data[assignments == cluster]
            if len(members) > 0:
                centers[cluster] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the point farthest from its centre.
                distances_to_nearest = np.min(
                    _pairwise_squared_distances(data, centers), axis=1
                )
                centers[cluster] = data[int(np.argmax(distances_to_nearest))]
    cost = kmeans_cost(data, centers)
    return ClusteringResult(centers=centers, cost=cost, iterations=iterations)


def greedy_k_center(points: Sequence, num_clusters: int, seed: RandomState = None) -> ClusteringResult:
    """Gonzalez's greedy farthest-point algorithm (2-approximation for k-center)."""
    data = _as_array(points)
    if num_clusters < 1:
        raise ConfigurationError(f"num_clusters must be >= 1, got {num_clusters}")
    if num_clusters > len(data):
        raise ConfigurationError(
            f"cannot find {num_clusters} centers among {len(data)} points"
        )
    rng = ensure_generator(seed)
    first = int(rng.integers(0, len(data)))
    center_indices = [first]
    distances = np.linalg.norm(data - data[first], axis=1)
    while len(center_indices) < num_clusters:
        farthest = int(np.argmax(distances))
        center_indices.append(farthest)
        distances = np.minimum(distances, np.linalg.norm(data - data[farthest], axis=1))
    centers = data[center_indices]
    return ClusteringResult(
        centers=centers, cost=k_center_cost(data, centers), iterations=1
    )


def kmeans_cost(points: Sequence, centers: np.ndarray) -> float:
    """Mean squared distance from each point to its nearest centre."""
    data = _as_array(points)
    distances = _pairwise_squared_distances(data, np.asarray(centers, dtype=float))
    return float(np.min(distances, axis=1).mean())


def k_center_cost(points: Sequence, centers: np.ndarray) -> float:
    """Maximum distance from any point to its nearest centre (the k-center objective)."""
    data = _as_array(points)
    distances = np.sqrt(
        _pairwise_squared_distances(data, np.asarray(centers, dtype=float))
    )
    return float(np.min(distances, axis=1).max())


def _pairwise_squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    differences = points[:, None, :] - centers[None, :, :]
    return np.sum(differences**2, axis=2)


def _kmeans_plus_plus_init(
    data: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    centers = [data[int(rng.integers(0, len(data)))]]
    while len(centers) < num_clusters:
        distances = np.min(
            _pairwise_squared_distances(data, np.asarray(centers)), axis=1
        )
        total = distances.sum()
        if total <= 0:
            centers.append(data[int(rng.integers(0, len(data)))])
            continue
        probabilities = distances / total
        choice = int(rng.choice(len(data), p=probabilities))
        centers.append(data[choice])
    return np.asarray(centers, dtype=float)


@dataclass(frozen=True)
class SampleClusteringComparison:
    """Cost on the full stream of clustering the sample vs clustering the stream."""

    sample_based_cost: float
    full_data_cost: float
    sample_size: int
    stream_size: int

    @property
    def cost_ratio(self) -> float:
        """``sample_based_cost / full_data_cost`` (1.0 means the sample lost nothing)."""
        if self.full_data_cost == 0:
            return 1.0 if self.sample_based_cost == 0 else float("inf")
        return self.sample_based_cost / self.full_data_cost


def compare_sample_clustering(
    stream: Sequence,
    sample: Sequence,
    num_clusters: int,
    seed: RandomState = None,
) -> SampleClusteringComparison:
    """Cluster the sample and the full stream separately; evaluate both on the stream."""
    sample_result = kmeans(sample, num_clusters, seed=seed)
    full_result = kmeans(stream, num_clusters, seed=seed)
    return SampleClusteringComparison(
        sample_based_cost=kmeans_cost(stream, sample_result.centers),
        full_data_cost=kmeans_cost(stream, full_result.centers),
        sample_size=len(sample),
        stream_size=len(stream),
    )
