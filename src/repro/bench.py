"""Machine-readable performance benchmark suite.

Every record produced here is a plain dict with the same five fields —
``op``, ``n``, ``seconds``, ``throughput`` (elements or rounds per second)
and ``speedup`` (vs the op's named per-element baseline, ``None`` for
baselines themselves) — so the perf trajectory of the project can finally be
tracked across PRs: :func:`run_suite` writes ``BENCH_PR3.json`` and the
README's performance table is refreshed from it.

Two scales are built in:

* ``smoke`` — a few seconds end to end; run by CI on every push, where only
  the *shape* of the output matters (the JSON artifact is uploaded for
  inspection, not gated on speedups, which would be noisy on shared runners);
* ``full`` — the scale the gates in ``benchmarks/bench_perf_game_chunked.py``
  reason about (10^5-element games).

Entry points: ``repro-experiments bench`` (CLI) and
``benchmarks/run_benchmarks.py`` (script wrapper).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Callable, Optional

import numpy as np

from ._version import __version__
from .adversary import UniformAdversary, run_adaptive_game, run_continuous_game
from .samplers import (
    BernoulliSampler,
    GreenwaldKhannaSketch,
    KLLSketch,
    MergeReduceSummary,
    MisraGriesSummary,
    PrioritySampler,
    ReservoirSampler,
    SlidingWindowSampler,
    WeightedReservoirSampler,
)
from .setsystems import PrefixSystem

__all__ = ["run_suite", "write_report", "render_markdown_table", "BENCH_FILENAME"]

#: Canonical report file name for this PR's benchmark artefact.
BENCH_FILENAME = "BENCH_PR3.json"

#: Universe shared by all game benchmarks (matches the tracker benchmarks).
_UNIVERSE = 4_096


def _time(function: Callable[[], Any]) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def _record(
    op: str, n: int, seconds: float, speedup: Optional[float] = None
) -> dict[str, Any]:
    return {
        "op": op,
        "n": n,
        "seconds": round(seconds, 6),
        "throughput": round(n / seconds, 1) if seconds > 0 else None,
        "speedup": round(speedup, 2) if speedup is not None else None,
    }


# ----------------------------------------------------------------------
# Individual benchmarks
# ----------------------------------------------------------------------
def _sampler_factories(n: int) -> dict[str, Callable[[], Any]]:
    """Per-sampler constructors at sizes that scale sensibly with ``n``."""
    capacity = min(512, max(32, n // 500))
    return {
        "bernoulli": lambda: BernoulliSampler(min(1.0, 2000 / n), seed=1),
        "reservoir": lambda: ReservoirSampler(capacity, seed=1),
        "weighted-reservoir": lambda: WeightedReservoirSampler(capacity, seed=1),
        "priority": lambda: PrioritySampler(capacity, seed=1),
        "sliding-window": lambda: SlidingWindowSampler(64, 8192, seed=1),
        "misra-gries": lambda: MisraGriesSummary(capacity),
        "kll": lambda: KLLSketch(128, seed=1),
        "greenwald-khanna": lambda: GreenwaldKhannaSketch(0.02),
        "merge-reduce": lambda: MergeReduceSummary(0.02),
    }


def _ingest_sequential(sampler: Any, data: list) -> None:
    step = sampler.process if hasattr(sampler, "process") else sampler.update
    for element in data:
        step(element)


def _ingest_batched(sampler: Any, data: list) -> None:
    if hasattr(sampler, "process"):  # StreamSampler: suppress update records
        sampler.extend(data, updates=False)
    else:  # sketches
        sampler.extend(data)


#: Caps on the stream fed to a sampler's *sequential* baseline, where the
#: per-element path is the very bottleneck being replaced and would dominate
#: the whole suite (the sliding window's prune is quadratic in its candidate
#: count, ~1 ms per element at the benchmarked configuration).  Capped
#: baselines still compare like for like: the speedup is measured with both
#: paths at the baseline length, and each record's ``n`` reports what was
#: actually measured.
_SEQUENTIAL_BASELINE_CAPS = {"sliding-window": 4_000}


def bench_sampler_extend(n: int) -> list[dict[str, Any]]:
    """Vectorised ``extend`` vs per-element ingestion, for every sampler.

    Per-element and batched ingestion are compared **at the same stream
    length** (per-element cost is not n-independent — sketch hierarchies
    deepen with the stream), so the reported speedup is a genuine
    like-for-like ratio even where the per-element baseline is capped below
    the headline ``n``; the batched path is additionally measured at the
    headline ``n`` for the throughput record.
    """
    rng = np.random.default_rng(0)
    integer_data = [int(value) for value in rng.integers(1, _UNIVERSE + 1, size=n)]
    float_data = [float(value) for value in integer_data]
    # Misra–Gries gets the workload it exists for: a heavy-hitter stream
    # (uniform noise over a large universe never re-hits its counters, which
    # benchmarks the novel-key fallback rather than the summary's use case).
    heavy_data = [int(value) for value in np.minimum(rng.zipf(1.5, size=n), _UNIVERSE)]
    records = []
    for name, factory in _sampler_factories(n).items():
        if name in ("kll", "greenwald-khanna", "merge-reduce"):
            data = float_data
        elif name == "misra-gries":
            data = heavy_data
        else:
            data = integer_data
        baseline_n = min(n, _SEQUENTIAL_BASELINE_CAPS.get(name, n))
        sequential_seconds = _time(lambda: _ingest_sequential(factory(), data[:baseline_n]))
        batched_baseline_seconds = _time(lambda: _ingest_batched(factory(), data[:baseline_n]))
        if baseline_n == n:
            batched_seconds = batched_baseline_seconds
        else:
            batched_seconds = _time(lambda: _ingest_batched(factory(), data))
        records.append(_record(f"extend/{name}/sequential", baseline_n, sequential_seconds))
        records.append(
            _record(
                f"extend/{name}/batched",
                n,
                batched_seconds,
                speedup=sequential_seconds / batched_baseline_seconds,
            )
        )
    return records


def bench_adaptive_game(n: int) -> list[dict[str, Any]]:
    """Endpoint adaptive game: chunked vs per-element path."""

    def play(chunk_size: Optional[int]) -> None:
        run_adaptive_game(
            ReservoirSampler(max(32, n // 500), seed=0),
            UniformAdversary(_UNIVERSE, seed=1),
            n,
            set_system=PrefixSystem(_UNIVERSE),
            epsilon=0.5,
            keep_updates=False,
            chunk_size=chunk_size,
        )

    per_element = _time(lambda: play(1))
    chunked = _time(lambda: play(None))
    return [
        _record("game/adaptive/per-element", n, per_element),
        _record("game/adaptive/chunked", n, chunked, speedup=per_element / chunked),
    ]


def bench_continuous_game(n: int) -> list[dict[str, Any]]:
    """Continuous game with dense checkpoints: chunked vs per-element path."""
    checkpoints = tuple(range(max(1, n // 400), n + 1, max(1, n // 400)))

    def play(chunk_size: Optional[int]) -> None:
        run_continuous_game(
            ReservoirSampler(max(32, n // 500), seed=0),
            UniformAdversary(_UNIVERSE, seed=1),
            n,
            set_system=PrefixSystem(_UNIVERSE),
            checkpoints=checkpoints,
            keep_updates=False,
            chunk_size=chunk_size,
        )

    per_element = _time(lambda: play(1))
    chunked = _time(lambda: play(None))
    return [
        _record("game/continuous/per-element", n, per_element),
        _record("game/continuous/chunked", n, chunked, speedup=per_element / chunked),
    ]


# ----------------------------------------------------------------------
# Suite
# ----------------------------------------------------------------------
#: (stream length for extend benchmarks, stream length for game benchmarks).
_MODES = {"smoke": (20_000, 10_000), "full": (1_000_000, 100_000)}


def run_suite(mode: str = "full") -> dict[str, Any]:
    """Run the ``bench_perf_*`` suite and return the machine-readable report."""
    if mode not in _MODES:
        raise ValueError(f"unknown benchmark mode {mode!r}; expected one of {sorted(_MODES)}")
    extend_n, game_n = _MODES[mode]
    records = (
        bench_sampler_extend(extend_n)
        + bench_adaptive_game(game_n)
        + bench_continuous_game(game_n)
    )
    return {
        "version": __version__,
        "mode": mode,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": records,
    }


def write_report(report: dict[str, Any], path: Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def render_markdown_table(report: dict[str, Any], include_baselines: bool = False) -> str:
    """The README performance table, straight from a benchmark report.

    By default only the batched/chunked rows appear — the per-element
    baselines carry no information the ``speedup`` column doesn't already
    encode — so the rendered table is exactly what the README embeds; pass
    ``include_baselines=True`` for the full record set.
    """
    lines = [
        "| op | n | seconds | throughput (elem/s) | speedup |",
        "| --- | ---: | ---: | ---: | ---: |",
    ]
    for record in report["results"]:
        if not include_baselines and record["speedup"] is None:
            continue
        speedup = f"{record['speedup']:.1f}x" if record["speedup"] is not None else "—"
        throughput = f"{record['throughput']:,.0f}" if record["throughput"] else "—"
        lines.append(
            f"| `{record['op']}` | {record['n']:,} | {record['seconds']:.3f} "
            f"| {throughput} | {speedup} |"
        )
    return "\n".join(lines)
