"""Machine-readable performance benchmark suite.

Every record produced here is a plain dict with the same five fields —
``op``, ``n``, ``seconds``, ``throughput`` (elements or rounds per second)
and ``speedup`` (vs the op's named per-element baseline, ``None`` for
baselines themselves) — so the perf trajectory of the project can finally be
tracked across PRs: :func:`run_suite` writes :data:`BENCH_FILENAME` and the
README's performance table is refreshed from it.

Two scales are built in:

* ``smoke`` — a few seconds end to end; run by CI on every push, where only
  the *shape* of the output matters (the JSON artifact is uploaded for
  inspection, not gated on speedups, which would be noisy on shared runners);
* ``full`` — the scale the gates in ``benchmarks/bench_perf_game_chunked.py``
  and ``benchmarks/bench_perf_sharded.py`` reason about (10^5-element games).

CI additionally runs :func:`check_report` (``repro-experiments bench
--check``) against the committed baseline report: the fresh smoke run must
keep the baseline's record schema and cover every operation the baseline
covers, so an accidentally dropped benchmark or a silent schema drift fails
the push instead of corrupting the perf trajectory.  Speedups themselves
stay informational on shared runners.

Entry points: ``repro-experiments bench`` (CLI) and
``benchmarks/run_benchmarks.py`` (script wrapper).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from collections.abc import Callable
from typing import Any

import numpy as np

from ._version import __version__
from .exceptions import ConfigurationError
from .adversary import (
    MixingGreedyDensityAdversary,
    ThresholdAttackAdversary,
    UniformAdversary,
    run_adaptive_game,
    run_continuous_game,
)
from .samplers import (
    BernoulliSampler,
    GreenwaldKhannaSketch,
    KLLSketch,
    MergeReduceSummary,
    MisraGriesSummary,
    PrioritySampler,
    ReservoirSampler,
    SlidingWindowSampler,
    WeightedReservoirSampler,
)
from .setsystems import Prefix, PrefixSystem

__all__ = [
    "BENCH_FILENAME",
    "check_report",
    "load_baseline",
    "render_markdown_table",
    "resolve_output",
    "run_suite",
    "write_report",
]

#: Canonical report file name for this PR's benchmark artefact.  CI derives
#: its output/artifact name from this constant instead of hardcoding it.
BENCH_FILENAME = "BENCH_PR9.json"

#: Fields every benchmark record must carry (the report schema).
RECORD_FIELDS = ("op", "n", "seconds", "throughput", "speedup")

#: Top-level fields every report must carry.
REPORT_FIELDS = ("version", "mode", "python", "numpy", "results")

#: Universe shared by all game benchmarks (matches the tracker benchmarks).
_UNIVERSE = 4_096


def _time(function: Callable[[], Any]) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


def _record(
    op: str, n: int, seconds: float, speedup: float | None = None
) -> dict[str, Any]:
    return {
        "op": op,
        "n": n,
        "seconds": round(seconds, 6),
        "throughput": round(n / seconds, 1) if seconds > 0 else None,
        "speedup": round(speedup, 2) if speedup is not None else None,
    }


# ----------------------------------------------------------------------
# Individual benchmarks
# ----------------------------------------------------------------------
def _sampler_factories(n: int) -> dict[str, Callable[[], Any]]:
    """Per-sampler constructors at sizes that scale sensibly with ``n``."""
    capacity = min(512, max(32, n // 500))
    return {
        "bernoulli": lambda: BernoulliSampler(min(1.0, 2000 / n), seed=1),
        "reservoir": lambda: ReservoirSampler(capacity, seed=1),
        "weighted-reservoir": lambda: WeightedReservoirSampler(capacity, seed=1),
        "priority": lambda: PrioritySampler(capacity, seed=1),
        "sliding-window": lambda: SlidingWindowSampler(64, 8192, seed=1),
        "misra-gries": lambda: MisraGriesSummary(capacity),
        "kll": lambda: KLLSketch(128, seed=1),
        "greenwald-khanna": lambda: GreenwaldKhannaSketch(0.02),
        "merge-reduce": lambda: MergeReduceSummary(0.02),
    }


def _ingest_sequential(sampler: Any, data: list[Any]) -> None:
    step = sampler.process if hasattr(sampler, "process") else sampler.update
    for element in data:
        step(element)


def _ingest_batched(sampler: Any, data: list[Any]) -> None:
    if hasattr(sampler, "process"):  # StreamSampler: suppress update records
        sampler.extend(data, updates=False)
    else:  # sketches
        sampler.extend(data)


#: Caps on the stream fed to a sampler's *sequential* baseline, where the
#: per-element path is the very bottleneck being replaced and would dominate
#: the whole suite (the sliding window's prune is quadratic in its candidate
#: count, ~1 ms per element at the benchmarked configuration).  Capped
#: baselines still compare like for like: the speedup is measured with both
#: paths at the baseline length, and each record's ``n`` reports what was
#: actually measured.
_SEQUENTIAL_BASELINE_CAPS = {"sliding-window": 4_000}


def bench_sampler_extend(n: int) -> list[dict[str, Any]]:
    """Vectorised ``extend`` vs per-element ingestion, for every sampler.

    Per-element and batched ingestion are compared **at the same stream
    length** (per-element cost is not n-independent — sketch hierarchies
    deepen with the stream), so the reported speedup is a genuine
    like-for-like ratio even where the per-element baseline is capped below
    the headline ``n``; the batched path is additionally measured at the
    headline ``n`` for the throughput record.
    """
    rng = np.random.default_rng(0)
    integer_data = [int(value) for value in rng.integers(1, _UNIVERSE + 1, size=n)]
    float_data = [float(value) for value in integer_data]
    # Misra–Gries gets the workload it exists for: a heavy-hitter stream
    # (uniform noise over a large universe never re-hits its counters, which
    # benchmarks the novel-key fallback rather than the summary's use case).
    heavy_data = [int(value) for value in np.minimum(rng.zipf(1.5, size=n), _UNIVERSE)]
    records = []
    for name, factory in _sampler_factories(n).items():
        if name in ("kll", "greenwald-khanna", "merge-reduce"):
            data = float_data
        elif name == "misra-gries":
            data = heavy_data
        else:
            data = integer_data
        baseline_n = min(n, _SEQUENTIAL_BASELINE_CAPS.get(name, n))
        sequential_seconds = _time(lambda: _ingest_sequential(factory(), data[:baseline_n]))
        batched_baseline_seconds = _time(lambda: _ingest_batched(factory(), data[:baseline_n]))
        if baseline_n == n:
            batched_seconds = batched_baseline_seconds
        else:
            batched_seconds = _time(lambda: _ingest_batched(factory(), data))
        records.append(_record(f"extend/{name}/sequential", baseline_n, sequential_seconds))
        records.append(
            _record(
                f"extend/{name}/batched",
                n,
                batched_seconds,
                speedup=sequential_seconds / batched_baseline_seconds,
            )
        )
    return records


def bench_adaptive_game(n: int) -> list[dict[str, Any]]:
    """Endpoint adaptive game: chunked vs per-element path."""

    def play(chunk_size: int | None) -> None:
        run_adaptive_game(
            ReservoirSampler(max(32, n // 500), seed=0),
            UniformAdversary(_UNIVERSE, seed=1),
            n,
            set_system=PrefixSystem(_UNIVERSE),
            epsilon=0.5,
            keep_updates=False,
            chunk_size=chunk_size,
        )

    per_element = _time(lambda: play(1))
    chunked = _time(lambda: play(None))
    return [
        _record("game/adaptive/per-element", n, per_element),
        _record("game/adaptive/chunked", n, chunked, speedup=per_element / chunked),
    ]


def bench_adaptive_cadence_game(n: int) -> list[dict[str, Any]]:
    """Endpoint game against cadence-declaring *adaptive* attacks.

    Two feedback shapes, both at a 256/128-round reaction cadence:

    * ``game/adaptive-cadence/*`` — the greedy density attack
      (``decision_needs="sample"``: re-reads the sample at every decision
      point, ignores update records);
    * ``game/adaptive-cadence-updates/*`` — the Figure-3 threshold attack
      (``decision_needs="updates"``: digests columnar ``UpdateBatch``
      feedback, never reads the sample).

    The chunked path segments the stream at the declared decision points and
    runs the sampler's vectorised kernels in between; ``chunk_size=1`` is
    the per-element baseline with the identical decision sequence.
    """

    def play_greedy(chunk_size: int | None) -> None:
        run_adaptive_game(
            ReservoirSampler(max(32, n // 500), seed=0),
            MixingGreedyDensityAdversary(
                Prefix(_UNIVERSE // 4), 1, _UNIVERSE, decision_period=256
            ),
            n,
            set_system=PrefixSystem(_UNIVERSE),
            epsilon=0.5,
            keep_updates=False,
            chunk_size=chunk_size,
        )

    def play_figure3(chunk_size: int | None) -> None:
        run_adaptive_game(
            BernoulliSampler(min(1.0, 100 / n), seed=0),
            ThresholdAttackAdversary.for_bernoulli(
                min(1.0, 100 / n), n, decision_period=128
            ),
            n,
            keep_updates=False,
            chunk_size=chunk_size,
        )

    records = []
    for op, play in (
        ("game/adaptive-cadence", play_greedy),
        ("game/adaptive-cadence-updates", play_figure3),
    ):
        per_element = _time(lambda: play(1))
        chunked = _time(lambda: play(None))
        records.append(_record(f"{op}/per-element", n, per_element))
        records.append(
            _record(f"{op}/chunked", n, chunked, speedup=per_element / chunked)
        )
    return records


def bench_continuous_game(n: int) -> list[dict[str, Any]]:
    """Continuous game with dense checkpoints: chunked vs per-element path."""
    checkpoints = tuple(range(max(1, n // 400), n + 1, max(1, n // 400)))

    def play(chunk_size: int | None) -> None:
        run_continuous_game(
            ReservoirSampler(max(32, n // 500), seed=0),
            UniformAdversary(_UNIVERSE, seed=1),
            n,
            set_system=PrefixSystem(_UNIVERSE),
            checkpoints=checkpoints,
            keep_updates=False,
            chunk_size=chunk_size,
        )

    per_element = _time(lambda: play(1))
    chunked = _time(lambda: play(None))
    return [
        _record("game/continuous/per-element", n, per_element),
        _record("game/continuous/chunked", n, chunked, speedup=per_element / chunked),
    ]


def bench_sharded_ingest(n: int) -> list[dict[str, Any]]:
    """Sharded deployment ingestion: chunked per-site routing vs per-element.

    A 4-site :class:`~repro.distributed.sharded.ShardedSampler` over
    reservoir shards, random routing.  The chunked path assigns the whole
    batch in one vectorised call and feeds each site one ``extend`` kernel
    call; the baseline routes and processes one element at a time.  Gated at
    >= 2x in ``benchmarks/bench_perf_sharded.py``; here the ratio is
    recorded for the trajectory.
    """
    from .distributed import ShardedSampler
    from .samplers.reservoir import ReservoirSampler

    capacity = min(512, max(32, n // 500))

    def site_factory(rng: np.random.Generator) -> ReservoirSampler:
        return ReservoirSampler(capacity, seed=rng)

    rng = np.random.default_rng(0)
    data = [int(value) for value in rng.integers(1, _UNIVERSE + 1, size=n)]

    def per_element() -> None:
        sharded = ShardedSampler(4, site_factory, strategy="random", seed=1)
        for element in data:
            sharded.process(element)

    def chunked() -> None:
        sharded = ShardedSampler(4, site_factory, strategy="random", seed=1)
        sharded.extend(data, updates=False)

    per_element_seconds = _time(per_element)
    chunked_seconds = _time(chunked)
    return [
        _record("sharded/ingest/per-element", n, per_element_seconds),
        _record(
            "sharded/ingest/chunked",
            n,
            chunked_seconds,
            speedup=per_element_seconds / chunked_seconds,
        ),
    ]


def bench_defended_ingest(n: int) -> list[dict[str, Any]]:
    """Replicated-defense ingestion overhead vs the undefended sampler.

    A 2-copy :class:`~repro.defenses.SketchSwitchingSampler` over Bernoulli
    copies ingests the same stream as the bare sampler, both through one
    ``extend`` kernel call.  The wrapper runs one kernel call per copy per
    segment, so the cost target is *linear in the copy count*: defended
    ingestion must stay within ``copies x undefended + 20%`` bookkeeping
    (gated in ``benchmarks/bench_perf_defenses.py``; recorded here for the
    trajectory — the ``speedup`` of the defended record reads as the
    fraction of undefended throughput retained, ~``1/copies``).
    """
    from .defenses import SketchSwitchingSampler

    copies = 2
    probability = min(1.0, 2000 / n)

    rng = np.random.default_rng(0)
    data = [int(value) for value in rng.integers(1, _UNIVERSE + 1, size=n)]

    def undefended() -> None:
        BernoulliSampler(probability, seed=1).extend(data, updates=False)

    def defended() -> None:
        SketchSwitchingSampler(
            lambda r: BernoulliSampler(probability, seed=r), copies=copies, seed=1
        ).extend(data, updates=False)

    undefended_seconds = _time(undefended)
    defended_seconds = _time(defended)
    return [
        _record("defended/ingest/undefended", n, undefended_seconds),
        _record(
            "defended/ingest/sketch-switching-2x",
            n,
            defended_seconds,
            speedup=undefended_seconds / defended_seconds,
        ),
    ]


def bench_resharding_ingest(n: int) -> list[dict[str, Any]]:
    """Elastic resharding overhead: a mid-stream split + merge vs static.

    Both deployments ingest the same stream through the chunked path; the
    elastic one splits site 0 at 40% of the stream ([CTW16] hypergeometric
    redistribution) and merges the sibling back at 70%.  The ``speedup`` of
    the elastic record reads as the fraction of static throughput retained —
    the reshard work is O(capacity) against an O(n) stream, so it must stay
    near 1 (gated in ``benchmarks/bench_perf_elastic.py``).
    """
    from .distributed import FaultPlan, Reshard, ShardedSampler
    from .samplers.reservoir import ReservoirSampler

    capacity = min(512, max(32, n // 500))

    def site_factory(rng: np.random.Generator) -> ReservoirSampler:
        return ReservoirSampler(capacity, seed=rng)

    rng = np.random.default_rng(0)
    data = [int(value) for value in rng.integers(1, _UNIVERSE + 1, size=n)]
    plan = FaultPlan(
        reshards=(
            Reshard(round=max(1, (2 * n) // 5), op="split", site=0),
            Reshard(round=max(2, (7 * n) // 10), op="merge", site=0, other=4),
        )
    )

    def static() -> None:
        ShardedSampler(4, site_factory, strategy="hash", seed=1).extend(
            data, updates=False
        )

    def elastic() -> None:
        ShardedSampler(
            4, site_factory, strategy="hash", seed=1, fault_plan=plan
        ).extend(data, updates=False)

    static_seconds = _time(static)
    elastic_seconds = _time(elastic)
    return [
        _record("elastic/resharding/static", n, static_seconds),
        _record(
            "elastic/resharding/split-merge",
            n,
            elastic_seconds,
            speedup=static_seconds / elastic_seconds,
        ),
    ]


def bench_fault_recovery(n: int) -> list[dict[str, Any]]:
    """Crash/recovery overhead: a replay-buffered outage vs a clean run.

    One of four hash-routed reservoir sites is down for a quarter of the
    stream with replay-buffered ingestion; the buffered elements are
    re-ingested in one kernel call at recovery.  The elastic record's
    ``speedup`` reads as the fraction of clean throughput retained — the
    outage trades per-site kernel work for buffering plus one replay flush,
    so it must stay near 1 (gated in ``benchmarks/bench_perf_elastic.py``).
    """
    from .distributed import FaultPlan, ShardedSampler, SiteCrash
    from .samplers.reservoir import ReservoirSampler

    capacity = min(512, max(32, n // 500))

    def site_factory(rng: np.random.Generator) -> ReservoirSampler:
        return ReservoirSampler(capacity, seed=rng)

    rng = np.random.default_rng(0)
    data = [int(value) for value in rng.integers(1, _UNIVERSE + 1, size=n)]
    plan = FaultPlan(
        crashes=(
            SiteCrash(
                site=1,
                round=max(1, n // 3),
                recovery_rounds=max(1, n // 4),
                loss="replay",
            ),
        )
    )

    def clean() -> None:
        ShardedSampler(4, site_factory, strategy="hash", seed=1).extend(
            data, updates=False
        )

    def faulted() -> None:
        ShardedSampler(
            4, site_factory, strategy="hash", seed=1, fault_plan=plan
        ).extend(data, updates=False)

    clean_seconds = _time(clean)
    faulted_seconds = _time(faulted)
    return [
        _record("elastic/faults/clean", n, clean_seconds),
        _record(
            "elastic/faults/crash-replay",
            n,
            faulted_seconds,
            speedup=clean_seconds / faulted_seconds,
        ),
    ]


def bench_service_mixed(n: int) -> list[dict[str, Any]]:
    """Always-on query service: ingest throughput and query latency under load.

    A :class:`~repro.service.QueryService` over a 4-site hash-routed
    reservoir deployment ingests the stream in chunks while concurrent
    client threads read quantiles/heavy-hitters/discrepancy from published
    snapshots (plus one adversarial client forcing fresh reads).  Four
    records:

    * ``service/ingest/no-readers`` — the reader-free chunked baseline;
    * ``service/ingest/4-readers`` — the same ingest with 4 benign + 1
      adversarial clients attached; its ``speedup`` reads as the fraction
      of reader-free throughput retained (gated at >= 0.7 in
      ``benchmarks/bench_perf_service.py``);
    * ``service/query/p50`` and ``service/query/p99`` — per-query latency
      quantiles across every client read of the loaded run (``n`` is the
      query count; ``seconds`` is the latency, floored at 1 microsecond so
      the record schema's positivity holds on fast machines).
    """
    from .distributed import ShardedSampler
    from .samplers.reservoir import ReservoirSampler
    from .service import QueryService

    capacity = min(512, max(32, n // 500))

    def site_factory(rng: np.random.Generator) -> ReservoirSampler:
        return ReservoirSampler(capacity, seed=rng)

    rng = np.random.default_rng(0)
    data = [int(value) for value in rng.integers(1, _UNIVERSE + 1, size=n)]

    def deployment() -> ShardedSampler:
        return ShardedSampler(4, site_factory, strategy="hash", seed=1)

    def no_readers() -> None:
        QueryService(deployment(), universe_size=_UNIVERSE).serve(
            data, chunk_size=1024, clients=0, adversarial_clients=0
        )

    loaded_report: list[Any] = []

    def with_readers() -> None:
        service = QueryService(
            deployment(), staleness_rounds=2048, universe_size=_UNIVERSE
        )
        loaded_report.append(
            service.serve(data, chunk_size=1024, clients=4, adversarial_clients=1)
        )

    no_reader_seconds = _time(no_readers)
    loaded_seconds = _time(with_readers)
    report = loaded_report[0]
    records = [
        _record("service/ingest/no-readers", n, no_reader_seconds),
        _record(
            "service/ingest/4-readers",
            n,
            loaded_seconds,
            speedup=no_reader_seconds / loaded_seconds,
        ),
    ]
    for label, latency in (("p50", report.query_p50), ("p99", report.query_p99)):
        records.append(
            _record(
                f"service/query/{label}",
                max(1, report.queries),
                max(latency or 0.0, 1e-6),
            )
        )
    return records


# ----------------------------------------------------------------------
# Suite
# ----------------------------------------------------------------------
#: (stream length for extend benchmarks, stream length for game benchmarks).
_MODES = {"smoke": (20_000, 10_000), "full": (1_000_000, 100_000)}


def run_suite(mode: str = "full") -> dict[str, Any]:
    """Run the ``bench_perf_*`` suite and return the machine-readable report."""
    if mode not in _MODES:
        raise ValueError(f"unknown benchmark mode {mode!r}; expected one of {sorted(_MODES)}")
    extend_n, game_n = _MODES[mode]
    records = (
        bench_sampler_extend(extend_n)
        + bench_defended_ingest(extend_n)
        + bench_sharded_ingest(game_n)
        + bench_resharding_ingest(game_n)
        + bench_fault_recovery(game_n)
        + bench_service_mixed(game_n)
        + bench_adaptive_game(game_n)
        + bench_adaptive_cadence_game(game_n)
        + bench_continuous_game(game_n)
    )
    return {
        "version": __version__,
        "mode": mode,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "results": records,
    }


def check_report(
    report: dict[str, Any], baseline: dict[str, Any]
) -> list[str]:
    """Validate a fresh report against the committed baseline's shape.

    Returns a list of human-readable problems (empty when the report is
    sound).  The check is deliberately about *shape*, not speed: every
    top-level field and per-record field of the schema must be present with
    a sane type, and every operation the baseline measured must still be
    measured — a benchmark that silently disappears breaks the perf
    trajectory even when every remaining number looks great.  New
    operations are allowed (that is how the op-set grows PR over PR).
    """
    problems: list[str] = []
    for field in REPORT_FIELDS:
        if field not in report:
            problems.append(f"report is missing the top-level field {field!r}")
    records = report.get("results")
    if not isinstance(records, list) or not records:
        problems.append("report has no results")
        return problems
    fresh_ops: set[str] = set()
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            problems.append(f"record #{index} is not an object")
            continue
        missing = [field for field in RECORD_FIELDS if field not in record]
        extra = [field for field in record if field not in RECORD_FIELDS]
        if missing:
            problems.append(
                f"record {record.get('op', f'#{index}')!r} is missing {missing}"
            )
        if extra:
            problems.append(
                f"record {record.get('op', f'#{index}')!r} has unknown fields {extra}"
            )
        op = record.get("op")
        if not isinstance(op, str) or not op:
            problems.append(f"record #{index} has no operation name")
            continue
        if op in fresh_ops:
            problems.append(f"operation {op!r} is reported twice")
        fresh_ops.add(op)
        if not isinstance(record.get("n"), int) or record.get("n", 0) <= 0:
            problems.append(f"operation {op!r} has a non-positive n")
        seconds = record.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            problems.append(f"operation {op!r} has an invalid seconds value")
    baseline_ops = {
        record.get("op")
        for record in baseline.get("results", [])
        if isinstance(record, dict)
    }
    missing_ops = sorted(op for op in baseline_ops - fresh_ops if op)
    if missing_ops:
        problems.append(
            "operations measured by the baseline are missing from the fresh "
            f"report: {', '.join(missing_ops)}"
        )
    return problems


def load_baseline(path: Path | None = None) -> tuple[Path, dict[str, Any]]:
    """Read the committed baseline report for ``--check`` comparisons.

    Defaults to :data:`BENCH_FILENAME` in the current directory.  The
    baseline must be read *before* any fresh suite runs so a missing or
    corrupt baseline fails fast instead of after minutes of benchmarking.
    Raises :class:`~repro.exceptions.ConfigurationError` with a message the
    CLI surfaces verbatim (``error: ...``, exit 2).
    """
    path = Path(path) if path is not None else Path(BENCH_FILENAME)
    if not path.exists():
        raise ConfigurationError(f"baseline report {path} not found")
    try:
        baseline = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"baseline report {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(baseline, dict):
        raise ConfigurationError(f"baseline report {path} is not a JSON object")
    return path, baseline


def resolve_output(
    output: Path | None = None, checking: bool = False
) -> Path:
    """Where a fresh report should be written.

    An explicit ``output`` always wins.  Otherwise plain runs refresh the
    canonical :data:`BENCH_FILENAME`, while ``--check`` runs write next to
    it with a ``.fresh.json`` suffix — the committed baseline is the thing
    being checked against and must never be clobbered by the check itself.
    """
    if output is not None:
        return Path(output)
    canonical = Path(BENCH_FILENAME)
    return canonical.with_suffix(".fresh.json") if checking else canonical


def write_report(report: dict[str, Any], path: Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def render_markdown_table(report: dict[str, Any], include_baselines: bool = False) -> str:
    """The README performance table, straight from a benchmark report.

    By default only the batched/chunked rows appear — the per-element
    baselines carry no information the ``speedup`` column doesn't already
    encode — so the rendered table is exactly what the README embeds; pass
    ``include_baselines=True`` for the full record set.
    """
    lines = [
        "| op | n | seconds | throughput (elem/s) | speedup |",
        "| --- | ---: | ---: | ---: | ---: |",
    ]
    for record in report["results"]:
        if not include_baselines and record["speedup"] is None:
            continue
        speedup = f"{record['speedup']:.1f}x" if record["speedup"] is not None else "—"
        throughput = f"{record['throughput']:,.0f}" if record["throughput"] else "—"
        lines.append(
            f"| `{record['op']}` | {record['n']:,} | {record['seconds']:.3f} "
            f"| {throughput} | {speedup} |"
        )
    return "\n".join(lines)
