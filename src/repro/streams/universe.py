"""Universe descriptions: the element domains adversaries may draw from.

Section 2 fixes a universe ``U`` at the start of the game and requires all
stream elements to come from it.  The classes here bundle a universe with the
natural set systems over it, so experiments can construct matched
(universe, set system, sample-size bound) triples in one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator
from typing import Any

from ..exceptions import ConfigurationError, UniverseError
from ..setsystems import (
    IntervalSystem,
    PrefixSystem,
    RectangleSystem,
    SingletonSystem,
)


@dataclass(frozen=True)
class OrderedUniverse:
    """The well-ordered discrete universe ``U = {1, ..., size}``.

    This is the universe used by the Figure-3 attack, the quantile
    application and the heavy-hitters application.
    """

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigurationError(f"universe size must be >= 1, got {self.size}")

    def __contains__(self, element: Any) -> bool:
        try:
            return 1 <= element <= self.size and float(element).is_integer()
        except TypeError:
            return False

    def __iter__(self) -> Iterator[int]:
        return iter(range(1, self.size + 1))

    def __len__(self) -> int:
        return self.size

    def validate(self, element: Any) -> int:
        """Return ``element`` as an int, raising :class:`UniverseError` if it is outside."""
        if element not in self:
            raise UniverseError(f"{element!r} is not in the universe [1, {self.size}]")
        return int(element)

    # ------------------------------------------------------------------
    # Associated set systems
    # ------------------------------------------------------------------
    def prefix_system(self) -> PrefixSystem:
        """Prefixes ``{[1, b]}`` — quantiles, the Figure-3 attack."""
        return PrefixSystem(self.size)

    def interval_system(self) -> IntervalSystem:
        """All intervals ``{[a, b]}`` — general representativeness."""
        return IntervalSystem(self.size)

    def singleton_system(self) -> SingletonSystem:
        """Singletons ``{{a}}`` — heavy hitters."""
        return SingletonSystem(self.size)

    @property
    def log_size(self) -> float:
        """``ln N`` — the quantity entering Corollary 1.5 / 1.6 sample sizes."""
        return math.log(self.size)


@dataclass(frozen=True)
class GridUniverse:
    """The grid universe ``U = {1, ..., side}^dimension`` used by range queries."""

    side: int
    dimension: int

    def __post_init__(self) -> None:
        if self.side < 1:
            raise ConfigurationError(f"grid side must be >= 1, got {self.side}")
        if self.dimension < 1:
            raise ConfigurationError(f"dimension must be >= 1, got {self.dimension}")

    def __contains__(self, element: Any) -> bool:
        try:
            point = tuple(element)
        except TypeError:
            return False
        if len(point) != self.dimension:
            return False
        return all(
            1 <= coordinate <= self.side and float(coordinate).is_integer()
            for coordinate in point
        )

    def __len__(self) -> int:
        return self.side**self.dimension

    def validate(self, element: Any) -> tuple[int, ...]:
        """Return ``element`` as an int tuple, raising if it is outside the grid."""
        if element not in self:
            raise UniverseError(
                f"{element!r} is not in the grid [1, {self.side}]^{self.dimension}"
            )
        return tuple(int(coordinate) for coordinate in element)

    def rectangle_system(self, **kwargs: Any) -> RectangleSystem:
        """Axis-aligned boxes over the grid — the range-query set system."""
        return RectangleSystem(self.side, self.dimension, **kwargs)

    @property
    def log_rectangle_cardinality(self) -> float:
        """``ln |R|`` for the box system, ``~ d ln(m (m+1)/2)``."""
        return self.dimension * math.log(self.side * (self.side + 1) / 2)
