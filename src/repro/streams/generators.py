"""Synthetic workload generators for the static experiments and applications.

The adversarial experiments generate their streams through the adversary
classes; the *static* baselines and the application benchmarks need ordinary
workloads.  Each generator returns a plain list of universe elements so it can
be wrapped in a :class:`repro.adversary.static.StaticAdversary`, fed directly
to a sampler, or split across the distributed substrate.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RandomState, ensure_generator


def uniform_stream(
    length: int, universe_size: int, seed: RandomState = None
) -> list[int]:
    """I.i.d. uniform elements from ``{1, ..., universe_size}``."""
    _validate_length(length)
    if universe_size < 1:
        raise ConfigurationError(f"universe size must be >= 1, got {universe_size}")
    rng = ensure_generator(seed)
    return [int(x) for x in rng.integers(1, universe_size + 1, size=length)]


def sorted_stream(length: int) -> list[int]:
    """The deterministic stream ``1, 2, ..., length``."""
    _validate_length(length)
    return list(range(1, length + 1))


def zipf_stream(
    length: int,
    universe_size: int,
    exponent: float = 1.2,
    seed: RandomState = None,
) -> list[int]:
    """I.i.d. Zipf(``exponent``) elements folded into ``{1, ..., universe_size}``.

    Heavy-tailed streams are the canonical workload for heavy hitters and for
    the load-balancing scenario: a few elements dominate the stream.
    """
    _validate_length(length)
    if universe_size < 1:
        raise ConfigurationError(f"universe size must be >= 1, got {universe_size}")
    if exponent <= 1.0:
        raise ConfigurationError(f"zipf exponent must exceed 1, got {exponent}")
    rng = ensure_generator(seed)
    out: list[int] = []
    while len(out) < length:
        draws = rng.zipf(exponent, size=length)
        out.extend(int(value) for value in draws if value <= universe_size)
    return out[:length]


def planted_heavy_hitter_stream(
    length: int,
    universe_size: int,
    heavy_values: Sequence[int],
    heavy_fraction: float,
    seed: RandomState = None,
) -> list[int]:
    """Stream in which each value of ``heavy_values`` receives ``heavy_fraction`` of the mass.

    The remaining mass is spread uniformly over the universe.  Used by the
    heavy-hitters experiment to obtain a known ground truth.
    """
    _validate_length(length)
    if not heavy_values:
        raise ConfigurationError("need at least one heavy value")
    if not 0.0 < heavy_fraction < 1.0:
        raise ConfigurationError(f"heavy fraction must lie in (0, 1), got {heavy_fraction}")
    if heavy_fraction * len(heavy_values) >= 1.0:
        raise ConfigurationError("total heavy mass must be strictly below 1")
    rng = ensure_generator(seed)
    stream: list[int] = []
    for value in rng.random(size=length):
        slot = int(value / heavy_fraction)
        if slot < len(heavy_values):
            stream.append(int(heavy_values[slot]))
        else:
            stream.append(int(rng.integers(1, universe_size + 1)))
    return stream


def clustered_points(
    length: int,
    side: int,
    dimension: int,
    clusters: int,
    spread: float = 0.05,
    seed: RandomState = None,
) -> list[tuple[int, ...]]:
    """Grid points grouped around ``clusters`` random centres.

    Used by the clustering (E11), range-query (E9) and center-point (E10)
    experiments: the planted structure gives those applications a meaningful
    ground truth to recover from the sample.
    """
    _validate_length(length)
    if clusters < 1:
        raise ConfigurationError(f"clusters must be >= 1, got {clusters}")
    if side < 2:
        raise ConfigurationError(f"grid side must be >= 2, got {side}")
    rng = ensure_generator(seed)
    centres = rng.uniform(1, side, size=(clusters, dimension))
    assignments = rng.integers(0, clusters, size=length)
    noise = rng.normal(scale=spread * side, size=(length, dimension))
    raw = centres[assignments] + noise
    clipped = np.clip(np.rint(raw), 1, side).astype(int)
    return [tuple(int(c) for c in row) for row in clipped]


def two_phase_stream(
    length: int,
    universe_size: int,
    change_point_fraction: float = 0.5,
    seed: RandomState = None,
) -> list[int]:
    """A stream whose distribution shifts mid-way (uniform low half, then high half).

    Models the "environment changes over time" motivation of Section 1.2:
    continuous robustness (Theorem 1.4) is about remaining representative
    across such shifts.
    """
    _validate_length(length)
    if universe_size < 2:
        raise ConfigurationError(f"universe size must be >= 2, got {universe_size}")
    if not 0.0 < change_point_fraction < 1.0:
        raise ConfigurationError(
            f"change point fraction must lie in (0, 1), got {change_point_fraction}"
        )
    rng = ensure_generator(seed)
    change_point = int(length * change_point_fraction)
    half = universe_size // 2
    low = rng.integers(1, half + 1, size=change_point)
    high = rng.integers(half + 1, universe_size + 1, size=length - change_point)
    return [int(x) for x in low] + [int(x) for x in high]


def query_workload(
    length: int,
    universe_size: int,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.8,
    seed: RandomState = None,
) -> list[int]:
    """A skewed "database query" workload: a hot set of keys absorbs most queries.

    Used by the distributed load-balancing simulation (E12), where each query
    is routed to one of ``K`` servers and each server's received substream
    should remain representative of the global workload.
    """
    _validate_length(length)
    if universe_size < 2:
        raise ConfigurationError(f"universe size must be >= 2, got {universe_size}")
    if not 0.0 < hot_fraction < 1.0:
        raise ConfigurationError(f"hot fraction must lie in (0, 1), got {hot_fraction}")
    if not 0.0 < hot_probability < 1.0:
        raise ConfigurationError(
            f"hot probability must lie in (0, 1), got {hot_probability}"
        )
    rng = ensure_generator(seed)
    hot_count = max(1, int(math.ceil(hot_fraction * universe_size)))
    stream: list[int] = []
    for is_hot in rng.random(size=length) < hot_probability:
        if is_hot:
            stream.append(int(rng.integers(1, hot_count + 1)))
        else:
            stream.append(int(rng.integers(hot_count + 1, universe_size + 1)))
    return stream


def _validate_length(length: int) -> None:
    if length < 1:
        raise ConfigurationError(f"stream length must be >= 1, got {length}")
