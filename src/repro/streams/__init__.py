"""Universe descriptions and synthetic workload generators."""

from .generators import (
    clustered_points,
    planted_heavy_hitter_stream,
    query_workload,
    sorted_stream,
    two_phase_stream,
    uniform_stream,
    zipf_stream,
)
from .universe import GridUniverse, OrderedUniverse

__all__ = [
    "GridUniverse",
    "OrderedUniverse",
    "clustered_points",
    "planted_heavy_hitter_stream",
    "query_workload",
    "sorted_stream",
    "two_phase_stream",
    "uniform_stream",
    "zipf_stream",
]
