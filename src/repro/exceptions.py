"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch a single exception type at an API boundary while still being able to
distinguish configuration problems from runtime failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An object was constructed with invalid or inconsistent parameters.

    Examples include a Bernoulli sampling probability outside ``[0, 1]``, a
    reservoir of non-positive capacity, or a set system over an empty universe.
    """


class EmptySampleError(ReproError):
    """An operation that requires a non-empty sample was invoked on an empty one.

    The paper's notion of an epsilon-approximation (Definition 1.1) is only
    defined for non-empty samples; density queries against an empty sample
    raise this error instead of silently returning ``nan``.
    """


class StreamExhaustedError(ReproError):
    """An adversary was asked for more elements than its strategy can produce.

    The Figure-3 attack, for instance, maintains a shrinking working range
    ``[a_i, b_i]``; if the range collapses before the stream ends the attack
    has failed and this error is raised so the experiment can record it.
    """


class UniverseError(ReproError):
    """An element outside the declared universe was submitted to a component."""


class TrackerUnsupportedError(ReproError):
    """An incremental discrepancy tracker cannot handle the supplied data.

    Raised when a stream or sample element cannot be indexed by the tracker's
    data structure (outside the universe, non-integral, too large for a dense
    array).  Game runners catch this and fall back to the batch
    ``max_discrepancy`` recomputation, so the error is a routing signal, not
    a failure.
    """


class ExperimentError(ReproError):
    """An experiment was configured with parameters that cannot be executed."""
